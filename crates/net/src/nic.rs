//! Simulated network interfaces and point-to-point transmission.
//!
//! Each [`Nic`] has an egress rate, an ingress rate and an MTU. A
//! transmission serializes on the sender's egress link, crosses the switch
//! after a propagation delay, drains through the receiver's ingress link
//! (which is where a slow NIC or PCI bus backlogs — the knfsd in the paper
//! sits on a 32-bit/33 MHz PCI slot), and lands in the receiver's queue.
//!
//! `transmit` never blocks the calling task: like a real `sock_sendmsg`
//! over UDP, the caller pays only CPU time (charged by the RPC layer) and
//! the wire drains asynchronously. Backpressure comes from higher layers
//! (the RPC slot table), exactly as in the reproduced system.

use std::rc::Rc;

use nfsperf_sim::{
    channel, ByteMeter, Counter, Receiver, Semaphore, Sender, Sim, SimDuration, SimTime, Trace,
};

use crate::frame::{fragments_for, pool_put, wire_bytes};

/// Static description of a NIC.
#[derive(Debug, Clone, Copy)]
pub struct NicSpec {
    /// Link rate in bits per second.
    pub bandwidth_bps: u64,
    /// Maximum transmission unit in bytes.
    pub mtu: usize,
}

impl NicSpec {
    /// Gigabit Ethernet, standard frames — the paper's client and filer.
    pub fn gigabit() -> NicSpec {
        NicSpec {
            bandwidth_bps: 1_000_000_000,
            mtu: 1500,
        }
    }

    /// Gigabit Ethernet with 9000-byte jumbo frames (the paper's proposed
    /// future work; our ablation).
    pub fn gigabit_jumbo() -> NicSpec {
        NicSpec {
            bandwidth_bps: 1_000_000_000,
            mtu: 9000,
        }
    }

    /// Fast Ethernet — the paper's "slow server" comparison point.
    pub fn fast_ethernet() -> NicSpec {
        NicSpec {
            bandwidth_bps: 100_000_000,
            mtu: 1500,
        }
    }

    /// A gigabit NIC throttled by its host bus to `bytes_per_sec` of
    /// sustained throughput (models the knfsd's 32-bit/33 MHz PCI slot).
    pub fn bus_limited(bytes_per_sec: u64) -> NicSpec {
        NicSpec {
            bandwidth_bps: bytes_per_sec * 8,
            mtu: 1500,
        }
    }

    /// Time to move `wire_len` bytes at this link's rate.
    pub fn transfer_time(&self, wire_len: usize) -> SimDuration {
        SimDuration((wire_len as u64 * 8 * 1_000_000_000).div_ceil(self.bandwidth_bps))
    }
}

/// A received datagram: the UDP payload bytes.
pub type DatagramPayload = Vec<u8>;

/// A simulated network interface.
pub struct Nic {
    sim: Sim,
    /// Interface name (for reports).
    pub name: &'static str,
    spec: NicSpec,
    tx_link: Rc<Semaphore>,
    rx_link: Rc<Semaphore>,
    rx_push: Sender<DatagramPayload>,
    tx_meter: Rc<ByteMeter>,
    rx_meter: Rc<ByteMeter>,
    /// Departure log: (when serialization finished, payload bytes) —
    /// the tcpdump's-eye view used to confirm client stalls do not
    /// appear on the wire.
    tx_events: Rc<Trace<usize>>,
    tx_fragments: Rc<Counter>,
    drops: Rc<Counter>,
    /// When set, each IP fragment is lost with this probability and a
    /// datagram survives only if all its fragments do (loss-path testing
    /// and the transport sweep; zero in all paper experiments).
    loss_probability: f64,
    rng_seed: u64,
    drop_rng: Rc<nfsperf_sim::SimRng>,
}

impl Nic {
    /// Creates a NIC, returning it and the receive queue its owner (the
    /// protocol stack above it) should drain.
    pub fn new(
        sim: &Sim,
        name: &'static str,
        spec: NicSpec,
    ) -> (Rc<Nic>, Receiver<DatagramPayload>) {
        Nic::with_loss(sim, name, spec, 0.0, 0)
    }

    /// Like [`Nic::new`] with a per-fragment loss probability (for tests
    /// of the RPC retransmission path and the UDP-vs-TCP loss sweep).
    pub fn with_loss(
        sim: &Sim,
        name: &'static str,
        spec: NicSpec,
        loss_probability: f64,
        rng_seed: u64,
    ) -> (Rc<Nic>, Receiver<DatagramPayload>) {
        let (tx, rx) = channel();
        let nic = Rc::new(Nic {
            sim: sim.clone(),
            name,
            spec,
            tx_link: Rc::new(Semaphore::new(1)),
            rx_link: Rc::new(Semaphore::new(1)),
            rx_push: tx,
            tx_meter: Rc::new(ByteMeter::new()),
            rx_meter: Rc::new(ByteMeter::new()),
            tx_events: Rc::new(Trace::new()),
            tx_fragments: Rc::new(Counter::new()),
            drops: Rc::new(Counter::new()),
            loss_probability,
            rng_seed,
            drop_rng: Rc::new(nfsperf_sim::SimRng::new(rng_seed ^ 0x6e65_7472_6e67)),
        });
        (nic, rx)
    }

    /// The NIC's static description.
    pub fn spec(&self) -> NicSpec {
        self.spec
    }

    /// Transmits `payload` to `dst` over a path with the given propagation
    /// `latency`. Returns immediately; delivery happens asynchronously.
    pub fn transmit(
        self: &Rc<Self>,
        dst: &Rc<Nic>,
        latency: SimDuration,
        payload: DatagramPayload,
    ) {
        self.transmit_routed(dst, latency, Vec::new(), 0, payload);
    }

    /// Like [`Nic::transmit`], additionally queueing for each shared
    /// bottleneck stage between serialization and propagation, in order —
    /// the switch-uplink hop every client in a fleet contends for, or the
    /// aggregation-then-core ladder of a multi-stage fabric. `flow` is
    /// the source flow id each stage's scheduler keys on.
    pub fn transmit_routed(
        self: &Rc<Self>,
        dst: &Rc<Nic>,
        latency: SimDuration,
        via: Vec<(Rc<crate::SharedLink>, crate::LinkDir)>,
        flow: u32,
        payload: DatagramPayload,
    ) {
        let src = Rc::clone(self);
        let dst = Rc::clone(dst);
        let sim = self.sim.clone();
        self.sim.spawn(async move {
            let wire_len = wire_bytes(payload.len(), src.spec.mtu);
            src.tx_fragments
                .add(fragments_for(payload.len(), src.spec.mtu) as u64);

            // Serialize onto our own wire.
            {
                let _tx = src.tx_link.acquire().await;
                sim.sleep(src.spec.transfer_time(wire_len)).await;
            }
            src.tx_meter.record(sim.now(), payload.len() as u64);
            src.tx_events.record(sim.now(), payload.len());

            // Loss is sampled per IP fragment: a datagram survives only
            // if every fragment does, so a multi-fragment UDP datagram
            // (e.g. a 32 KB WRITE) is far more exposed than a
            // single-fragment TCP segment at the same wire loss rate —
            // one lost fragment destroys the whole datagram at
            // reassembly. All fragments are sampled so RNG consumption
            // depends only on the datagram's size.
            if src.loss_probability > 0.0 {
                let mut lost = false;
                for _ in 0..fragments_for(payload.len(), src.spec.mtu) {
                    lost |= src.drop_rng.chance(src.loss_probability);
                }
                if lost {
                    src.drops.inc();
                    // The datagram dies here; its buffer does not.
                    pool_put(payload);
                    return;
                }
            }

            // Queue for each shared bottleneck stage (aggregation switch,
            // then the server's core uplink), in path order. Lost
            // datagrams were dropped before reaching the first stage, as
            // on a real ingress port.
            for (link, dir) in &via {
                link.traverse(flow, *dir, wire_len, payload.len()).await;
            }

            // Propagate through the switch.
            sim.sleep(latency).await;

            // Drain through the receiver's (possibly slower) side; the
            // switch buffers the queue that forms here.
            {
                let _rx = dst.rx_link.acquire().await;
                sim.sleep(dst.spec.transfer_time(wire_len)).await;
            }
            dst.rx_meter.record(sim.now(), payload.len() as u64);
            dst.rx_push.send(payload);
        });
    }

    /// Payload bytes transmitted (excluding framing).
    pub fn tx_bytes(&self) -> u64 {
        self.tx_meter.bytes()
    }

    /// Payload bytes received (excluding framing).
    pub fn rx_bytes(&self) -> u64 {
        self.rx_meter.bytes()
    }

    /// Mean transmit throughput over the active period, MB/s.
    pub fn tx_throughput_mbps(&self) -> f64 {
        self.tx_meter.throughput_mbps()
    }

    /// Mean receive throughput over the active period, MB/s.
    pub fn rx_throughput_mbps(&self) -> f64 {
        self.rx_meter.throughput_mbps()
    }

    /// Departure log: when each datagram finished serializing, with its
    /// payload size — the on-the-wire view of client behaviour.
    pub fn tx_events(&self) -> Vec<(SimTime, usize)> {
        self.tx_events.samples()
    }

    /// Largest gap between consecutive datagram departures of at least
    /// `min_bytes` payload (`None` with fewer than two such departures).
    pub fn max_tx_gap(&self, min_bytes: usize) -> Option<SimDuration> {
        let events: Vec<SimTime> = self
            .tx_events
            .samples()
            .into_iter()
            .filter(|(_, len)| *len >= min_bytes)
            .map(|(t, _)| t)
            .collect();
        events.windows(2).map(|w| w[1].since(w[0])).max()
    }

    /// IP fragments generated by this NIC so far.
    pub fn fragments_sent(&self) -> u64 {
        self.tx_fragments.get()
    }

    /// Datagrams dropped by injected loss.
    pub fn drops(&self) -> u64 {
        self.drops.get()
    }

    /// The seed used for this NIC's loss process.
    pub fn rng_seed(&self) -> u64 {
        self.rng_seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_sim::SimTime;

    #[test]
    fn spec_transfer_time() {
        let g = NicSpec::gigabit();
        // 1250 bytes = 10,000 bits at 1 Gb/s = 10 µs.
        assert_eq!(g.transfer_time(1250).as_nanos(), 10_000);
        let f = NicSpec::fast_ethernet();
        assert_eq!(f.transfer_time(1250).as_nanos(), 100_000);
    }

    #[test]
    fn delivery_takes_tx_latency_rx() {
        let sim = Sim::new();
        let (a, _arx) = Nic::new(&sim, "client", NicSpec::gigabit());
        let (b, brx) = Nic::new(&sim, "server", NicSpec::gigabit());
        a.transmit(&b, SimDuration::from_micros(50), vec![0u8; 1422]);
        let got = sim.run_until(async move { brx.recv().await });
        assert_eq!(got.unwrap().len(), 1422);
        // wire = 1422 + 8 + 20 + 38 = 1488B -> 11.904us each side + 50us.
        let expect = 11_904 + 50_000 + 11_904;
        assert_eq!(sim.now(), SimTime(expect));
    }

    #[test]
    fn slow_receiver_paces_throughput() {
        let sim = Sim::new();
        let (a, _arx) = Nic::new(&sim, "client", NicSpec::gigabit());
        let (b, brx) = Nic::new(&sim, "slow", NicSpec::fast_ethernet());
        for _ in 0..10 {
            a.transmit(&b, SimDuration::from_micros(10), vec![0u8; 1422]);
        }
        let n = sim.run_until(async move {
            let mut n = 0;
            while n < 10 {
                brx.recv().await.unwrap();
                n += 1;
            }
            n
        });
        assert_eq!(n, 10);
        // Ten 1488-byte frames at 100 Mb/s ingress ≈ 119 µs each; the
        // total must be dominated by the receiver, not the sender.
        assert!(sim.now().as_nanos() > 10 * 119_000);
        assert!(b.rx_bytes() == 10 * 1422);
    }

    #[test]
    fn fragments_counted() {
        let sim = Sim::new();
        let (a, _arx) = Nic::new(&sim, "client", NicSpec::gigabit());
        let (b, brx) = Nic::new(&sim, "server", NicSpec::gigabit());
        a.transmit(&b, SimDuration::ZERO, vec![0u8; 8248]);
        sim.run_until(async move { brx.recv().await });
        assert_eq!(a.fragments_sent(), 6);
    }

    #[test]
    fn jumbo_frames_send_one_fragment() {
        let sim = Sim::new();
        let (a, _arx) = Nic::new(&sim, "client", NicSpec::gigabit_jumbo());
        let (b, brx) = Nic::new(&sim, "server", NicSpec::gigabit_jumbo());
        a.transmit(&b, SimDuration::ZERO, vec![0u8; 8248]);
        sim.run_until(async move { brx.recv().await });
        assert_eq!(a.fragments_sent(), 1);
    }

    #[test]
    fn transmit_does_not_block_caller() {
        let sim = Sim::new();
        let (a, _arx) = Nic::new(&sim, "client", NicSpec::gigabit());
        let (b, _brx) = Nic::new(&sim, "server", NicSpec::gigabit());
        let s = sim.clone();
        sim.run_until(async move {
            for _ in 0..100 {
                a.transmit(&b, SimDuration::from_micros(50), vec![0u8; 8248]);
            }
            // The caller spent no simulated time queueing transmissions.
            assert_eq!(s.now(), SimTime::ZERO);
            s.sleep(SimDuration::from_millis(100)).await;
        });
    }

    #[test]
    fn injected_loss_drops_datagrams() {
        let sim = Sim::new();
        let (a, _arx) = Nic::with_loss(&sim, "lossy", NicSpec::gigabit(), 1.0, 7);
        let (b, brx) = Nic::new(&sim, "server", NicSpec::gigabit());
        a.transmit(&b, SimDuration::ZERO, vec![0u8; 100]);
        let s = sim.clone();
        sim.run_until(async move {
            s.sleep(SimDuration::from_millis(1)).await;
        });
        assert_eq!(a.drops(), 1);
        assert!(brx.is_empty());
    }

    #[test]
    fn ordering_preserved_point_to_point() {
        let sim = Sim::new();
        let (a, _arx) = Nic::new(&sim, "client", NicSpec::gigabit());
        let (b, brx) = Nic::new(&sim, "server", NicSpec::gigabit());
        for i in 0..5u8 {
            a.transmit(&b, SimDuration::from_micros(10), vec![i; 64]);
        }
        let order = sim.run_until(async move {
            let mut order = Vec::new();
            for _ in 0..5 {
                order.push(brx.recv().await.unwrap()[0]);
            }
            order
        });
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;

    #[test]
    fn tx_events_record_departures() {
        let sim = Sim::new();
        let (a, _arx) = Nic::new(&sim, "a", NicSpec::gigabit());
        let (b, brx) = Nic::new(&sim, "b", NicSpec::gigabit());
        for _ in 0..3 {
            a.transmit(&b, SimDuration::from_micros(10), vec![0u8; 1000]);
        }
        sim.run_until(async move {
            for _ in 0..3 {
                brx.recv().await.unwrap();
            }
        });
        let events = a.tx_events();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[1].0 >= w[0].0), "ordered");
        assert!(a.max_tx_gap(1).is_some());
        assert!(a.max_tx_gap(100_000).is_none(), "no big datagrams");
    }
}
