//! Simulated network substrate: NICs, links, fragmentation, byte meters.
//!
//! The test bed of the paper is a gigabit Ethernet switch (Extreme
//! Networks Summit7i) connecting a dual-CPU client, a Network Appliance
//! F85 filer, and a four-way Linux NFS server whose NIC sits in a slow
//! 32-bit/33 MHz PCI slot. [`NicSpec`] captures each interface; transfers
//! pay for serialization at the sender, propagation through the switch,
//! and drain time at the (possibly slower) receiver, with IP fragmentation
//! computed from real datagram sizes ([`frame`]).

pub mod frame;
pub mod nic;

pub use frame::{fragments_for, wire_bytes, ETHERNET_OVERHEAD, IP_HEADER, UDP_HEADER};
pub use nic::{DatagramPayload, Nic, NicSpec};

use nfsperf_sim::SimDuration;

/// A configured path between two NICs: who to send to and how far away.
///
/// The switch adds a fixed store-and-forward latency; the paper's
/// Summit7i is a few microseconds, and end-host interrupt coalescing adds
/// tens more, so the default one-way latency is 30 µs.
#[derive(Clone)]
pub struct Path {
    /// The local interface.
    pub local: std::rc::Rc<Nic>,
    /// The remote interface.
    pub remote: std::rc::Rc<Nic>,
    /// One-way propagation + switching latency.
    pub latency: SimDuration,
}

impl Path {
    /// Default one-way latency through the test-bed switch.
    pub fn default_latency() -> SimDuration {
        SimDuration::from_micros(30)
    }

    /// Sends one datagram along the path (asynchronously).
    pub fn send(&self, payload: DatagramPayload) {
        self.local.transmit(&self.remote, self.latency, payload);
    }

    /// The reverse path.
    pub fn reversed(&self) -> Path {
        Path {
            local: std::rc::Rc::clone(&self.remote),
            remote: std::rc::Rc::clone(&self.local),
            latency: self.latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_sim::Sim;

    #[test]
    fn path_send_and_reverse() {
        let sim = Sim::new();
        let (a, arx) = Nic::new(&sim, "a", NicSpec::gigabit());
        let (b, brx) = Nic::new(&sim, "b", NicSpec::gigabit());
        let ab = Path {
            local: a,
            remote: b,
            latency: Path::default_latency(),
        };
        let ba = ab.reversed();
        ab.send(vec![1; 10]);
        ba.send(vec![2; 20]);
        let (got_b, got_a) =
            sim.run_until(async move { (brx.recv().await.unwrap(), arx.recv().await.unwrap()) });
        assert_eq!(got_b, vec![1; 10]);
        assert_eq!(got_a, vec![2; 20]);
    }
}
