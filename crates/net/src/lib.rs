//! Simulated network substrate: NICs, links, fragmentation, byte meters.
//!
//! The test bed of the paper is a gigabit Ethernet switch (Extreme
//! Networks Summit7i) connecting a dual-CPU client, a Network Appliance
//! F85 filer, and a four-way Linux NFS server whose NIC sits in a slow
//! 32-bit/33 MHz PCI slot. [`NicSpec`] captures each interface; transfers
//! pay for serialization at the sender, propagation through the switch,
//! and drain time at the (possibly slower) receiver, with IP fragmentation
//! computed from real datagram sizes ([`frame`]).

pub mod frame;
pub mod nic;
pub mod sched;
pub mod switch;

pub use frame::{
    fragments_for, pool_copy, pool_get, pool_len, pool_put, wire_bytes, ETHERNET_OVERHEAD,
    IP_HEADER, UDP_HEADER,
};
pub use nic::{DatagramPayload, Nic, NicSpec};
pub use sched::{PortDrr, PortFifo, PortPolicy, PortSched, PortTicket, PortWrr, WeightTable};
pub use switch::{Fabric, FabricConfig, LaneAdmit, LinkDir, SharedLink, Switch};

use nfsperf_sim::SimDuration;

/// A configured path between two NICs: who to send to and how far away.
///
/// The switch adds a fixed store-and-forward latency; the paper's
/// Summit7i is a few microseconds, and end-host interrupt coalescing adds
/// tens more, so the default one-way latency is 30 µs. A path may also
/// route `via` an ordered list of [`SharedLink`] stages — a single server
/// uplink for the flat fleet [`Switch`], or an aggregation switch *and*
/// the core uplink for the multi-stage [`switch::Fabric`] — in which case
/// every datagram additionally queues for each stage's directional lane,
/// in order.
#[derive(Clone)]
pub struct Path {
    /// The local interface.
    pub local: std::rc::Rc<Nic>,
    /// The remote interface.
    pub remote: std::rc::Rc<Nic>,
    /// One-way propagation + switching latency.
    pub latency: SimDuration,
    /// Shared bottleneck stages traversed between the endpoints, in
    /// transmit order (empty for a point-to-point path).
    pub via: Vec<(std::rc::Rc<SharedLink>, LinkDir)>,
    /// Source flow id the shared stages' schedulers key on — the
    /// client's dense id in a fleet (assigned by [`Switch::attach`] /
    /// [`switch::Fabric::attach`]); 0 for point-to-point paths, where no
    /// scheduler ever sees it.
    pub flow: u32,
}

impl Path {
    /// A direct path between two NICs (no shared bottleneck).
    pub fn new(local: std::rc::Rc<Nic>, remote: std::rc::Rc<Nic>, latency: SimDuration) -> Path {
        Path {
            local,
            remote,
            latency,
            via: Vec::new(),
            flow: 0,
        }
    }

    /// Appends a shared-link stage in direction `dir`; stages are
    /// traversed in the order they were added.
    pub fn via_shared(mut self, link: std::rc::Rc<SharedLink>, dir: LinkDir) -> Path {
        self.via.push((link, dir));
        self
    }

    /// Default one-way latency through the test-bed switch.
    pub fn default_latency() -> SimDuration {
        SimDuration::from_micros(30)
    }

    /// Sends one datagram along the path (asynchronously).
    pub fn send(&self, payload: DatagramPayload) {
        self.local
            .transmit_routed(&self.remote, self.latency, self.via.clone(), self.flow, payload);
    }

    /// The reverse path: the same shared-link stages in reverse order,
    /// each on its opposite lane (replies unwind the fabric inside out).
    /// Replies keep the forward flow id: a reply lane shared by many
    /// clients schedules by the client the reply belongs to.
    pub fn reversed(&self) -> Path {
        Path {
            local: std::rc::Rc::clone(&self.remote),
            remote: std::rc::Rc::clone(&self.local),
            latency: self.latency,
            via: self
                .via
                .iter()
                .rev()
                .map(|(link, dir)| (std::rc::Rc::clone(link), dir.flipped()))
                .collect(),
            flow: self.flow,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_sim::Sim;

    #[test]
    fn path_send_and_reverse() {
        let sim = Sim::new();
        let (a, arx) = Nic::new(&sim, "a", NicSpec::gigabit());
        let (b, brx) = Nic::new(&sim, "b", NicSpec::gigabit());
        let ab = Path::new(a, b, Path::default_latency());
        let ba = ab.reversed();
        ab.send(vec![1; 10]);
        ba.send(vec![2; 20]);
        let (got_b, got_a) =
            sim.run_until(async move { (brx.recv().await.unwrap(), arx.recv().await.unwrap()) });
        assert_eq!(got_b, vec![1; 10]);
        assert_eq!(got_a, vec![2; 20]);
    }
}
