//! Shared-bottleneck switch model for multi-client topologies.
//!
//! The paper's test bed connects one client and one server through an
//! Extreme Networks Summit7i, so a single [`crate::Path`] between two
//! NICs is enough. Scaling the client side out changes that: every
//! client's traffic funnels into the *same* server uplink, and the
//! interesting question becomes which resource saturates first — the
//! shared wire, the server NIC, or the server's service loop.
//!
//! [`SharedLink`] models that funnel: one full-duplex link with a
//! serialization lane per direction. Any number of [`crate::Path`]s can
//! route `via` the link; datagrams from different paths contend for the
//! lane in arrival order, exactly as frames queue on a switch uplink
//! port. [`Switch`] bundles the bookkeeping for the common topology —
//! N client NICs, one server behind one uplink — so experiment code can
//! attach clients one line at a time.

use std::rc::Rc;

use nfsperf_sim::{ByteMeter, Counter, Receiver, Semaphore, Sim};

use crate::nic::{DatagramPayload, Nic, NicSpec};
use crate::Path;

/// Which way a datagram crosses a [`SharedLink`].
///
/// The two directions are independent lanes (full duplex): replies never
/// contend with requests, matching switched Ethernet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDir {
    /// From a client port toward the server uplink.
    ToServer,
    /// From the server uplink back toward a client port.
    ToClients,
}

impl LinkDir {
    /// The opposite direction (used by [`Path::reversed`]).
    pub fn flipped(self) -> LinkDir {
        match self {
            LinkDir::ToServer => LinkDir::ToClients,
            LinkDir::ToClients => LinkDir::ToServer,
        }
    }

    fn lane(self) -> usize {
        match self {
            LinkDir::ToServer => 0,
            LinkDir::ToClients => 1,
        }
    }
}

struct Lane {
    wire: Rc<Semaphore>,
    meter: ByteMeter,
    datagrams: Counter,
}

impl Lane {
    fn new() -> Lane {
        Lane {
            wire: Rc::new(Semaphore::new(1)),
            meter: ByteMeter::new(),
            datagrams: Counter::new(),
        }
    }
}

/// One full-duplex link shared by many paths — the server's uplink port.
///
/// Each traversal serializes the datagram's wire bytes at the link rate
/// while holding the directional lane, so concurrent senders queue
/// behind each other. The rate comes from a [`NicSpec`] so the link can
/// mirror the server's own interface (e.g. the knfsd's bus-limited NIC),
/// putting the fleet bottleneck where the paper's hardware had it.
pub struct SharedLink {
    sim: Sim,
    /// Link name (for reports).
    pub name: &'static str,
    spec: NicSpec,
    lanes: [Lane; 2],
}

impl SharedLink {
    /// Creates a shared link running at `spec`'s rate in each direction.
    pub fn new(sim: &Sim, name: &'static str, spec: NicSpec) -> Rc<SharedLink> {
        Rc::new(SharedLink {
            sim: sim.clone(),
            name,
            spec,
            lanes: [Lane::new(), Lane::new()],
        })
    }

    /// The link's rate/MTU description.
    pub fn spec(&self) -> NicSpec {
        self.spec
    }

    /// Carries one datagram of `wire_len` wire bytes (`payload_len`
    /// payload) across the link, queueing behind other traffic in the
    /// same direction.
    pub async fn traverse(&self, dir: LinkDir, wire_len: usize, payload_len: usize) {
        let lane = &self.lanes[dir.lane()];
        {
            let _wire = lane.wire.acquire().await;
            self.sim.sleep(self.spec.transfer_time(wire_len)).await;
        }
        lane.meter.record(self.sim.now(), payload_len as u64);
        lane.datagrams.inc();
    }

    /// Payload bytes carried in `dir` (excluding framing).
    pub fn bytes(&self, dir: LinkDir) -> u64 {
        self.lanes[dir.lane()].meter.bytes()
    }

    /// Datagrams carried in `dir`.
    pub fn datagrams(&self, dir: LinkDir) -> u64 {
        self.lanes[dir.lane()].datagrams.get()
    }

    /// Mean payload throughput in `dir` over the active period, MB/s.
    pub fn throughput_mbps(&self, dir: LinkDir) -> f64 {
        self.lanes[dir.lane()].meter.throughput_mbps()
    }
}

/// The common fleet topology: N clients, one server, one shared uplink.
///
/// Each attached client gets a dedicated server-side *port* NIC (the
/// switch port demultiplexes by source, as a UDP server demultiplexes by
/// peer address) and a [`Path`] routed `via` the shared uplink, so all
/// clients contend for the same wire into the server.
pub struct Switch {
    sim: Sim,
    uplink: Rc<SharedLink>,
    latency: nfsperf_sim::SimDuration,
}

impl Switch {
    /// Creates a switch whose server uplink runs at `uplink_spec`'s rate.
    pub fn new(sim: &Sim, uplink_spec: NicSpec, latency: nfsperf_sim::SimDuration) -> Switch {
        Switch {
            sim: sim.clone(),
            uplink: SharedLink::new(sim, "uplink", uplink_spec),
            latency,
        }
    }

    /// Attaches a client NIC: creates the server-side port NIC and
    /// returns the client→server path (routed via the uplink) plus the
    /// port's receive queue for the server to drain.
    pub fn attach(
        &self,
        client: &Rc<Nic>,
        port_spec: NicSpec,
    ) -> (Path, Receiver<DatagramPayload>) {
        let (port, port_rx) = Nic::new(&self.sim, "server-port", port_spec);
        let path = Path::new(Rc::clone(client), port, self.latency)
            .via_shared(Rc::clone(&self.uplink), LinkDir::ToServer);
        (path, port_rx)
    }

    /// The shared server uplink.
    pub fn uplink(&self) -> &Rc<SharedLink> {
        &self.uplink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_sim::SimDuration;

    #[test]
    fn shared_lane_serializes_concurrent_senders() {
        let sim = Sim::new();
        // Two gigabit clients into a 100 Mb/s uplink: the shared lane,
        // not the client NICs, must pace delivery.
        let sw = Switch::new(&sim, NicSpec::fast_ethernet(), SimDuration::ZERO);
        let (a, _arx) = Nic::new(&sim, "a", NicSpec::gigabit());
        let (b, _brx) = Nic::new(&sim, "b", NicSpec::gigabit());
        let (pa, rxa) = sw.attach(&a, NicSpec::gigabit());
        let (pb, rxb) = sw.attach(&b, NicSpec::gigabit());
        pa.send(vec![1u8; 1400]);
        pb.send(vec![2u8; 1400]);
        sim.run_until(async move {
            rxa.recv().await.unwrap();
            rxb.recv().await.unwrap();
        });
        // Each 1466-wire-byte frame takes ~117 µs at 100 Mb/s on the
        // shared lane; two frames must take at least two lane slots even
        // though the senders serialized concurrently at 1 Gb/s.
        assert!(sim.now().as_nanos() >= 2 * 117_000);
        assert_eq!(sw.uplink().datagrams(LinkDir::ToServer), 2);
        assert_eq!(sw.uplink().bytes(LinkDir::ToServer), 2 * 1400);
    }

    #[test]
    fn reply_direction_does_not_contend_with_requests() {
        let sim = Sim::new();
        let sw = Switch::new(&sim, NicSpec::fast_ethernet(), SimDuration::ZERO);
        let (a, arx) = Nic::new(&sim, "a", NicSpec::gigabit());
        let (path, port_rx) = sw.attach(&a, NicSpec::gigabit());
        let reply = path.reversed();
        path.send(vec![1u8; 1400]);
        reply.send(vec![2u8; 1400]);
        sim.run_until(async move {
            port_rx.recv().await.unwrap();
            arx.recv().await.unwrap();
        });
        assert_eq!(sw.uplink().datagrams(LinkDir::ToServer), 1);
        assert_eq!(sw.uplink().datagrams(LinkDir::ToClients), 1);
        // Full duplex: both frames fit in barely more than one lane slot.
        assert!(sim.now().as_nanos() < 2 * 117_000 + 60_000);
    }

    #[test]
    fn flipped_swaps_directions() {
        assert_eq!(LinkDir::ToServer.flipped(), LinkDir::ToClients);
        assert_eq!(LinkDir::ToClients.flipped(), LinkDir::ToServer);
    }
}
