//! Shared-bottleneck switch model for multi-client topologies.
//!
//! The paper's test bed connects one client and one server through an
//! Extreme Networks Summit7i, so a single [`crate::Path`] between two
//! NICs is enough. Scaling the client side out changes that: every
//! client's traffic funnels into the *same* server uplink, and the
//! interesting question becomes which resource saturates first — the
//! shared wire, the server NIC, or the server's service loop.
//!
//! [`SharedLink`] models that funnel: one full-duplex link with a
//! serialization lane per direction. Any number of [`crate::Path`]s can
//! route `via` the link; datagrams from different paths contend for the
//! lane under a pluggable [`PortSched`] policy — arrival order by
//! default, exactly as frames queue on a switch uplink port, or
//! per-flow DRR/WRR when the experiment asks the switch to police a
//! hog. [`Switch`] bundles the bookkeeping for the common topology — N
//! client NICs, one server behind one uplink — so experiment code can
//! attach clients one line at a time.
//!
//! ## Lane admission (why this is bit-compatible with the old FIFO)
//!
//! Before port scheduling existed, a lane was a bare
//! [`nfsperf_sim::Semaphore`] with one permit. The engine below
//! replicates that semaphore's admission protocol exactly, with the
//! waiter queue swapped for a [`PortSched`]:
//!
//! - **fast path**: slot free and nothing queued → take the slot
//!   without queueing (the semaphore's `permits > 0 && queue.is_empty()`
//!   barge);
//! - **release**: free the slot, then wake exactly the scheduler's next
//!   pick (`release_one`'s head wake) — at most one wake outstanding;
//! - **steal**: a woken waiter that finds the slot taken (a fast-path
//!   arrival barged in first) refunds its pick and re-queues at the
//!   scheduler's mercy, as the semaphore's woken waiter re-queued at
//!   the back.
//!
//! Under [`PortFifo`] every wake, poll, and queue transition happens in
//! the same order as the semaphore lane, so sweeps under the default
//! policy reproduce the pre-refactor CSVs byte for byte (a replay
//! property test in this crate and the committed sweep artifacts both
//! hold this line).

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::task::Waker;

use nfsperf_sim::{ByteMeter, Counter, LatencyDigest, Receiver, Sim, SimDuration, SimTime};

use crate::nic::{DatagramPayload, Nic, NicSpec};
use crate::sched::{PortPolicy, PortSched, PortTicket, TicketWait};
use crate::Path;

/// Which way a datagram crosses a [`SharedLink`].
///
/// The two directions are independent lanes (full duplex): replies never
/// contend with requests, matching switched Ethernet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDir {
    /// From a client port toward the server uplink.
    ToServer,
    /// From the server uplink back toward a client port.
    ToClients,
}

impl LinkDir {
    /// The opposite direction (used by [`Path::reversed`]).
    pub fn flipped(self) -> LinkDir {
        match self {
            LinkDir::ToServer => LinkDir::ToClients,
            LinkDir::ToClients => LinkDir::ToServer,
        }
    }

    fn lane(self) -> usize {
        match self {
            LinkDir::ToServer => 0,
            LinkDir::ToClients => 1,
        }
    }
}

/// One directional lane: a single serialization slot whose waiters are
/// ordered by a [`PortSched`].
struct Lane {
    sched: Box<dyn PortSched>,
    /// Whether a datagram currently holds the serialization slot.
    busy: Cell<bool>,
    /// Woken-but-not-yet-running picks (0 or 1 with a single slot):
    /// release never wakes a second waiter past an outstanding one,
    /// mirroring the semaphore's single head wake.
    pending_wakes: Cell<usize>,
    meter: ByteMeter,
    datagrams: Counter,
    /// Sampled queue delays (arrival → slot grant). Sampling is strided
    /// and off by default (stride 0) so megafleet-scale runs carry no
    /// per-lane sample state unless an experiment asks for it.
    queue_delay: RefCell<Vec<SimDuration>>,
    sample_counter: Cell<u64>,
    sample_stride: Cell<u64>,
}

impl Lane {
    fn new(policy: &PortPolicy) -> Lane {
        Lane {
            sched: policy.build(),
            busy: Cell::new(false),
            pending_wakes: Cell::new(0),
            meter: ByteMeter::new(),
            datagrams: Counter::new(),
            queue_delay: RefCell::new(Vec::new()),
            sample_counter: Cell::new(0),
            sample_stride: Cell::new(0),
        }
    }

    /// Wakes the scheduler's next pick if the slot is free and no wake
    /// is already outstanding — the engine's single-slot `kick`.
    fn kick(&self) {
        if !self.busy.get() && self.pending_wakes.get() == 0 {
            if let Some(ticket) = self.sched.pick_next() {
                self.pending_wakes.set(self.pending_wakes.get() + 1);
                ticket.wake();
            }
        }
    }

    fn sample_queue_delay(&self, delay: SimDuration) {
        let stride = self.sample_stride.get();
        if stride == 0 {
            return;
        }
        let n = self.sample_counter.get();
        self.sample_counter.set(n + 1);
        if n.is_multiple_of(stride) {
            self.queue_delay.borrow_mut().push(delay);
        }
    }

    /// Live bytes beyond the pinned arbiter model: policy state plus any
    /// enabled sample pool.
    fn extra_resident_bytes(&self) -> usize {
        self.sched.resident_bytes()
            + self.queue_delay.borrow().capacity() * std::mem::size_of::<SimDuration>()
    }
}

/// Modeled structural footprint of one shared link, pinned at the
/// semaphore-era measurement (`SharedLink` was 136 bytes when a lane was
/// `{Semaphore, ByteMeter, Counter}`). The flyweight memory ledger
/// charges this *model*, not the live Rust layout, so the per-client
/// budget stays comparable across scheduling policies and PRs; what
/// scheduling actually adds is charged live on top (see
/// [`SharedLink::resident_bytes`]).
const LINK_MODEL_BYTES: usize = 136;

/// Modeled per-lane arbiter footprint: the semaphore-era lane charged
/// the semaphore itself plus a 32-byte allowance for pooled wait nodes.
/// The engine's slot/wake cells and empty FIFO queue fit the same
/// allowance; DRR/WRR deficit state is charged live, not hand-waved
/// into this constant (that undercount is exactly what
/// [`SharedLink::resident_bytes`] now fixes).
fn arbiter_model_bytes() -> usize {
    std::mem::size_of::<nfsperf_sim::Semaphore>() + 32
}

/// In-flight state for one [`SharedLink::poll_admit`] traversal:
/// arrival time (for queue-delay sampling) plus the queued ticket once
/// the fast path fails. Built per hop with [`LaneAdmit::start`] and
/// must be driven to admission once started — a queued ticket holds a
/// scheduler slot, just as a parked [`SharedLink::traverse`] task does.
pub struct LaneAdmit {
    arrival: SimTime,
    started: bool,
    ticket: Option<Rc<PortTicket>>,
}

impl LaneAdmit {
    /// Begins an admission arriving at `now`.
    pub fn start(now: SimTime) -> LaneAdmit {
        LaneAdmit {
            arrival: now,
            started: false,
            ticket: None,
        }
    }
}

/// One full-duplex link shared by many paths — the server's uplink port.
///
/// Each traversal serializes the datagram's wire bytes at the link rate
/// while holding the directional lane, so concurrent senders queue
/// behind each other. The rate comes from a [`NicSpec`] so the link can
/// mirror the server's own interface (e.g. the knfsd's bus-limited NIC),
/// putting the fleet bottleneck where the paper's hardware had it. The
/// order waiters drain is the lane's [`PortSched`] policy.
pub struct SharedLink {
    sim: Sim,
    /// Link name (for reports).
    pub name: &'static str,
    spec: NicSpec,
    policy_label: &'static str,
    lanes: [Lane; 2],
}

impl SharedLink {
    /// Creates a shared link running at `spec`'s rate in each direction,
    /// FIFO lanes (the pre-subsystem behaviour).
    pub fn new(sim: &Sim, name: &'static str, spec: NicSpec) -> Rc<SharedLink> {
        SharedLink::with_policy(sim, name, spec, &PortPolicy::Fifo)
    }

    /// Creates a shared link whose lanes drain under `policy`.
    pub fn with_policy(
        sim: &Sim,
        name: &'static str,
        spec: NicSpec,
        policy: &PortPolicy,
    ) -> Rc<SharedLink> {
        Rc::new(SharedLink {
            sim: sim.clone(),
            name,
            spec,
            policy_label: policy.label(),
            lanes: [Lane::new(policy), Lane::new(policy)],
        })
    }

    /// The link's rate/MTU description.
    pub fn spec(&self) -> NicSpec {
        self.spec
    }

    /// The lane scheduling policy's name (`port-fifo`, `port-drr`, …).
    pub fn policy_label(&self) -> &'static str {
        self.policy_label
    }

    /// Enables queue-delay sampling on both lanes, keeping every
    /// `stride`-th sample (0 disables and is the default).
    pub fn set_queue_sampling(&self, stride: u64) {
        for lane in &self.lanes {
            lane.sample_stride.set(stride);
        }
    }

    /// Carries one datagram of `wire_len` wire bytes (`payload_len`
    /// payload) from `flow` across the link, queueing behind other
    /// traffic in the same direction under the lane's policy.
    pub async fn traverse(&self, flow: u32, dir: LinkDir, wire_len: usize, payload_len: usize) {
        let lane = &self.lanes[dir.lane()];
        let arrival = self.sim.now();
        // Fast path: slot free, nothing queued — barge in without
        // queueing (the semaphore's uncontended acquire).
        if lane.busy.get() || lane.sched.queued() > 0 {
            let ticket = PortTicket::new(flow, wire_len as u64);
            loop {
                lane.sched.enqueue(Rc::clone(&ticket));
                lane.kick();
                TicketWait {
                    ticket: Rc::clone(&ticket),
                }
                .await;
                ticket.rearm();
                lane.pending_wakes.set(lane.pending_wakes.get() - 1);
                if !lane.busy.get() {
                    break;
                }
                // Slot stolen by a fast-path arrival between our wake and
                // our poll: refund the pick and re-queue.
                lane.sched.ungrant(flow, wire_len as u64);
            }
            PortTicket::recycle(ticket);
        }
        lane.busy.set(true);
        lane.sample_queue_delay(self.sim.now().since(arrival));
        self.sim.sleep(self.spec.transfer_time(wire_len)).await;
        // Account while still holding the slot, so meters and datagram
        // counts advance in dequeue order even when the scheduler
        // reorders flows (a DRR pick finishing its wire time must be
        // metered before the next pick starts, not racing release).
        lane.meter.record(self.sim.now(), payload_len as u64);
        lane.datagrams.inc();
        lane.busy.set(false);
        lane.kick();
    }

    /// Poll-style admission to the `dir` lane for taskless state
    /// machines: `true` once the serialization slot is held (the caller
    /// then models the wire time itself and calls
    /// [`SharedLink::finish_traverse`] when it elapses), `false` after
    /// parking a waker from `waker_factory` — call again when it fires.
    ///
    /// Every queue transition — fast-path barge, enqueue/kick, the
    /// post-wake busy re-check and ungrant-requeue on a stolen slot —
    /// replays [`SharedLink::traverse`]'s admission exactly, and both
    /// kinds of traffic share each lane's one [`PortSched`], so mixed
    /// task/event traffic drains in the identical order.
    pub fn poll_admit(
        &self,
        st: &mut LaneAdmit,
        dir: LinkDir,
        flow: u32,
        wire_len: usize,
        waker_factory: &mut dyn FnMut() -> Waker,
    ) -> bool {
        let lane = &self.lanes[dir.lane()];
        if !st.started {
            st.started = true;
            // Fast path: slot free, nothing queued — barge in without
            // queueing (the semaphore's uncontended acquire).
            if !(lane.busy.get() || lane.sched.queued() > 0) {
                lane.busy.set(true);
                lane.sample_queue_delay(self.sim.now().since(st.arrival));
                return true;
            }
            let ticket = PortTicket::new(flow, wire_len as u64);
            lane.sched.enqueue(Rc::clone(&ticket));
            lane.kick();
            st.ticket = Some(ticket);
        }
        loop {
            let ticket = st.ticket.as_ref().expect("LaneAdmit ticket state");
            if !ticket.is_woken() {
                ticket.park(waker_factory());
                return false;
            }
            ticket.rearm();
            lane.pending_wakes.set(lane.pending_wakes.get() - 1);
            if !lane.busy.get() {
                break;
            }
            // Slot stolen by a fast-path arrival between our wake and
            // our poll: refund the pick and re-queue.
            lane.sched.ungrant(flow, wire_len as u64);
            lane.sched.enqueue(Rc::clone(ticket));
            lane.kick();
        }
        if let Some(t) = st.ticket.take() {
            PortTicket::recycle(t);
        }
        lane.busy.set(true);
        lane.sample_queue_delay(self.sim.now().since(st.arrival));
        true
    }

    /// Completes a traversal admitted by [`SharedLink::poll_admit`] once
    /// the caller's modeled wire time has elapsed: meters the payload in
    /// dequeue order, releases the slot, and kicks the next pick —
    /// [`SharedLink::traverse`]'s epilogue, verbatim.
    pub fn finish_traverse(&self, dir: LinkDir, payload_len: usize) {
        let lane = &self.lanes[dir.lane()];
        lane.meter.record(self.sim.now(), payload_len as u64);
        lane.datagrams.inc();
        lane.busy.set(false);
        lane.kick();
    }

    /// Payload bytes carried in `dir` (excluding framing).
    pub fn bytes(&self, dir: LinkDir) -> u64 {
        self.lanes[dir.lane()].meter.bytes()
    }

    /// Datagrams carried in `dir`.
    pub fn datagrams(&self, dir: LinkDir) -> u64 {
        self.lanes[dir.lane()].datagrams.get()
    }

    /// Mean payload throughput in `dir` over the active period, MB/s.
    pub fn throughput_mbps(&self, dir: LinkDir) -> f64 {
        self.lanes[dir.lane()].meter.throughput_mbps()
    }

    /// Digest of sampled queue delays (arrival → slot grant) in `dir`.
    /// Empty unless [`SharedLink::set_queue_sampling`] enabled sampling.
    pub fn queue_delay(&self, dir: LinkDir) -> LatencyDigest {
        LatencyDigest::of_mut(&mut self.lanes[dir.lane()].queue_delay.borrow_mut())
    }

    /// Number of queue-delay samples retained in `dir`.
    pub fn queue_delay_samples(&self, dir: LinkDir) -> usize {
        self.lanes[dir.lane()].queue_delay.borrow().len()
    }

    /// Modeled resident bytes of this link: the pinned semaphore-era
    /// structural model (so the flyweight ledger is comparable across
    /// policies) plus the *live* per-lane scheduler state — DRR deficit
    /// tables, rings, queued-ticket storage — and any enabled
    /// queue-delay sample pools. Under FIFO with sampling off this is
    /// exactly the pre-refactor figure.
    pub fn resident_bytes(&self) -> usize {
        LINK_MODEL_BYTES
            + self
                .lanes
                .iter()
                .map(|lane| arbiter_model_bytes() + lane.extra_resident_bytes())
                .sum::<usize>()
    }
}

/// The common fleet topology: N clients, one server, one shared uplink.
///
/// Each attached client gets a dedicated server-side *port* NIC (the
/// switch port demultiplexes by source, as a UDP server demultiplexes by
/// peer address) and a [`Path`] routed `via` the shared uplink, so all
/// clients contend for the same wire into the server. Attach order
/// assigns each client a dense flow id, which is what the uplink's
/// DRR/WRR policies key on.
pub struct Switch {
    sim: Sim,
    uplink: Rc<SharedLink>,
    latency: nfsperf_sim::SimDuration,
    next_flow: Cell<u32>,
}

impl Switch {
    /// Creates a switch whose server uplink runs at `uplink_spec`'s rate,
    /// FIFO uplink lanes.
    pub fn new(sim: &Sim, uplink_spec: NicSpec, latency: nfsperf_sim::SimDuration) -> Switch {
        Switch::with_port_sched(sim, uplink_spec, latency, &PortPolicy::Fifo)
    }

    /// Creates a switch whose uplink lanes drain under `policy`.
    pub fn with_port_sched(
        sim: &Sim,
        uplink_spec: NicSpec,
        latency: nfsperf_sim::SimDuration,
        policy: &PortPolicy,
    ) -> Switch {
        Switch {
            sim: sim.clone(),
            uplink: SharedLink::with_policy(sim, "uplink", uplink_spec, policy),
            latency,
            next_flow: Cell::new(0),
        }
    }

    /// Attaches a client NIC: assigns the next flow id, creates the
    /// server-side port NIC, and returns the client→server path (routed
    /// via the uplink) plus the port's receive queue for the server to
    /// drain.
    pub fn attach(
        &self,
        client: &Rc<Nic>,
        port_spec: NicSpec,
    ) -> (Path, Receiver<DatagramPayload>) {
        let flow = self.next_flow.get();
        self.next_flow.set(flow + 1);
        let (port, port_rx) = Nic::new(&self.sim, "server-port", port_spec);
        let mut path = Path::new(Rc::clone(client), port, self.latency)
            .via_shared(Rc::clone(&self.uplink), LinkDir::ToServer);
        path.flow = flow;
        (path, port_rx)
    }

    /// The shared server uplink.
    pub fn uplink(&self) -> &Rc<SharedLink> {
        &self.uplink
    }
}

/// Parameters of a multi-stage [`Fabric`].
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Clients per aggregation switch (the edge fan-in of each tier-1
    /// device).
    pub fanout: usize,
    /// Each aggregation switch's uplink rate into the core. Provisioned
    /// well above the core by default, so the *server's* uplink — not the
    /// fabric — stays the bottleneck, as in the flat [`Switch`] topology.
    pub agg_spec: NicSpec,
    /// The core uplink into the server (normally the server NIC's rate).
    pub core_spec: NicSpec,
    /// One-way propagation + store-and-forward latency end to end.
    pub latency: SimDuration,
    /// Lane scheduling policy applied to every fabric stage (the core
    /// uplink and each aggregation uplink).
    pub port_sched: PortPolicy,
}

impl FabricConfig {
    /// A fabric whose core uplink runs at `core_spec`'s rate: 1024-way
    /// aggregation switches with 10 Gb/s uplinks, default path latency,
    /// FIFO lanes.
    pub fn new(core_spec: NicSpec) -> FabricConfig {
        FabricConfig {
            fanout: 1024,
            agg_spec: NicSpec {
                bandwidth_bps: 10_000_000_000,
                mtu: core_spec.mtu,
            },
            core_spec,
            latency: Path::default_latency(),
            port_sched: PortPolicy::Fifo,
        }
    }
}

/// A two-tier switch fabric: clients → aggregation switches → one core
/// uplink → the server.
///
/// The flat [`Switch`] keeps one `Path` per client; at 10k–1M clients
/// that is the only per-client network state this topology needs, and
/// flyweight clients skip even that by traversing the shared stages
/// directly. Routing is O(1) by construction: client `id` hangs off
/// aggregation switch `id / fanout` (a dense index, no lookup table or
/// linear attach scan), and every aggregation switch uplinks into the
/// same core link. The client id doubles as the flow id every stage's
/// scheduler keys on, so DRR fairness works for flyweight and faithful
/// clients alike.
pub struct Fabric {
    sim: Sim,
    config: FabricConfig,
    core: Rc<SharedLink>,
    /// Aggregation-tier uplinks, indexed by `client / fanout`; grown on
    /// demand as higher client ids route through the fabric.
    aggs: RefCell<Vec<Rc<SharedLink>>>,
    /// Next client id to assign (ids are dense, in attach order).
    next_id: Cell<u32>,
}

impl Fabric {
    /// Creates a fabric; aggregation switches materialize lazily as
    /// client ids route through them.
    pub fn new(sim: &Sim, config: FabricConfig) -> Fabric {
        assert!(config.fanout > 0, "a fabric needs a positive fanout");
        let core = SharedLink::with_policy(sim, "core-uplink", config.core_spec, &config.port_sched);
        Fabric {
            sim: sim.clone(),
            config,
            core,
            aggs: RefCell::new(Vec::new()),
            next_id: Cell::new(0),
        }
    }

    /// The fabric's parameters.
    pub fn config(&self) -> FabricConfig {
        self.config.clone()
    }

    /// The core uplink into the server.
    pub fn core(&self) -> Rc<SharedLink> {
        Rc::clone(&self.core)
    }

    /// One-way path latency through the fabric.
    pub fn latency(&self) -> SimDuration {
        self.config.latency
    }

    /// The aggregation switch client `id` hangs off (created on first
    /// touch). O(1): the route is the index `id / fanout`.
    pub fn agg_of(&self, id: u32) -> Rc<SharedLink> {
        let idx = id as usize / self.config.fanout;
        let mut aggs = self.aggs.borrow_mut();
        while aggs.len() <= idx {
            aggs.push(SharedLink::with_policy(
                &self.sim,
                "agg-uplink",
                self.config.agg_spec,
                &self.config.port_sched,
            ));
        }
        Rc::clone(&aggs[idx])
    }

    /// Aggregation switches materialized so far.
    pub fn agg_count(&self) -> usize {
        self.aggs.borrow().len()
    }

    /// Reserves `n` dense client ids and returns the first. Flyweight
    /// tiers claim whole ranges; [`Fabric::attach`] claims one at a time.
    pub fn alloc_ids(&self, n: u32) -> u32 {
        let base = self.next_id.get();
        self.next_id.set(base + n);
        base
    }

    /// The client→server shared-link stages for `id`, in traversal
    /// order: its aggregation uplink, then the core.
    pub fn stages_to_server(&self, id: u32) -> Vec<(Rc<SharedLink>, LinkDir)> {
        vec![
            (self.agg_of(id), LinkDir::ToServer),
            (self.core(), LinkDir::ToServer),
        ]
    }

    /// Attaches one full-fidelity client NIC: assigns the next client
    /// id, creates the server-side port NIC, and returns the
    /// client→server path routed through the aggregation tier and the
    /// core uplink, plus the port's receive queue. The id is the path's
    /// flow id.
    pub fn attach(
        &self,
        client: &Rc<Nic>,
        port_spec: NicSpec,
    ) -> (u32, Path, Receiver<DatagramPayload>) {
        let id = self.alloc_ids(1);
        let (port, port_rx) = Nic::new(&self.sim, "server-port", port_spec);
        let mut path = Path::new(Rc::clone(client), port, self.config.latency);
        path.via = self.stages_to_server(id);
        path.flow = id;
        (id, path, port_rx)
    }

    /// Resident bytes of the fabric's shared state: the core plus every
    /// materialized aggregation switch, each charged at the pinned
    /// structural model plus its live scheduler/sample state (see
    /// [`SharedLink::resident_bytes`] — the old version hand-waved 32
    /// bytes per lane and would undercount DRR deficit tables). Used by
    /// the flyweight tier's per-client memory accounting.
    pub fn resident_bytes(&self) -> usize {
        self.core.resident_bytes()
            + self
                .aggs
                .borrow()
                .iter()
                .map(|agg| agg.resident_bytes())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_sim::SimDuration;

    #[test]
    fn shared_lane_serializes_concurrent_senders() {
        let sim = Sim::new();
        // Two gigabit clients into a 100 Mb/s uplink: the shared lane,
        // not the client NICs, must pace delivery.
        let sw = Switch::new(&sim, NicSpec::fast_ethernet(), SimDuration::ZERO);
        let (a, _arx) = Nic::new(&sim, "a", NicSpec::gigabit());
        let (b, _brx) = Nic::new(&sim, "b", NicSpec::gigabit());
        let (pa, rxa) = sw.attach(&a, NicSpec::gigabit());
        let (pb, rxb) = sw.attach(&b, NicSpec::gigabit());
        assert_eq!(pa.flow, 0, "attach order assigns dense flow ids");
        assert_eq!(pb.flow, 1);
        pa.send(vec![1u8; 1400]);
        pb.send(vec![2u8; 1400]);
        sim.run_until(async move {
            rxa.recv().await.unwrap();
            rxb.recv().await.unwrap();
        });
        // Each 1466-wire-byte frame takes ~117 µs at 100 Mb/s on the
        // shared lane; two frames must take at least two lane slots even
        // though the senders serialized concurrently at 1 Gb/s.
        assert!(sim.now().as_nanos() >= 2 * 117_000);
        assert_eq!(sw.uplink().datagrams(LinkDir::ToServer), 2);
        assert_eq!(sw.uplink().bytes(LinkDir::ToServer), 2 * 1400);
        assert_eq!(sw.uplink().policy_label(), "port-fifo");
    }

    #[test]
    fn reply_direction_does_not_contend_with_requests() {
        let sim = Sim::new();
        let sw = Switch::new(&sim, NicSpec::fast_ethernet(), SimDuration::ZERO);
        let (a, arx) = Nic::new(&sim, "a", NicSpec::gigabit());
        let (path, port_rx) = sw.attach(&a, NicSpec::gigabit());
        let reply = path.reversed();
        path.send(vec![1u8; 1400]);
        reply.send(vec![2u8; 1400]);
        sim.run_until(async move {
            port_rx.recv().await.unwrap();
            arx.recv().await.unwrap();
        });
        assert_eq!(sw.uplink().datagrams(LinkDir::ToServer), 1);
        assert_eq!(sw.uplink().datagrams(LinkDir::ToClients), 1);
        // Full duplex: both frames fit in barely more than one lane slot.
        assert!(sim.now().as_nanos() < 2 * 117_000 + 60_000);
    }

    #[test]
    fn flipped_swaps_directions() {
        assert_eq!(LinkDir::ToServer.flipped(), LinkDir::ToClients);
        assert_eq!(LinkDir::ToClients.flipped(), LinkDir::ToServer);
    }

    #[test]
    fn queue_sampling_is_off_by_default_and_strided_when_on() {
        let sim = Sim::new();
        let link = SharedLink::new(&sim, "l", NicSpec::fast_ethernet());
        let base = link.resident_bytes();
        let l = Rc::clone(&link);
        sim.run_until(async move {
            for _ in 0..4 {
                l.traverse(0, LinkDir::ToServer, 1500, 1400).await;
            }
        });
        assert_eq!(link.queue_delay_samples(LinkDir::ToServer), 0);
        assert_eq!(link.resident_bytes(), base, "sampling off adds no state");

        link.set_queue_sampling(2);
        let l = Rc::clone(&link);
        sim.run_until(async move {
            for _ in 0..4 {
                l.traverse(0, LinkDir::ToServer, 1500, 1400).await;
            }
        });
        assert_eq!(link.queue_delay_samples(LinkDir::ToServer), 2);
        assert!(link.resident_bytes() > base, "sample pool charged live");
        let digest = link.queue_delay(LinkDir::ToServer);
        assert_eq!(digest.p50, SimDuration::ZERO, "uncontended: zero delay");
    }

    /// The pinned structural model: under FIFO with sampling off, a
    /// link's resident charge must equal the semaphore-era figure
    /// (SharedLink was 136 bytes; each lane charged
    /// `size_of::<Semaphore>() + 32`), keeping megafleet's memory column
    /// stable across the scheduler refactor.
    #[test]
    fn fifo_link_resident_bytes_match_semaphore_era_model() {
        let sim = Sim::new();
        let link = SharedLink::new(&sim, "l", NicSpec::gigabit());
        let expect = 136 + 2 * (std::mem::size_of::<nfsperf_sim::Semaphore>() + 32);
        assert_eq!(link.resident_bytes(), expect);
        assert_eq!(expect, 360, "semaphore-era per-link footprint");
    }

    #[test]
    fn drr_link_resident_bytes_charge_live_scheduler_state() {
        let sim = Sim::new();
        let link = SharedLink::with_policy(&sim, "l", NicSpec::fast_ethernet(), &PortPolicy::drr());
        let idle = link.resident_bytes();
        assert_eq!(idle, 360, "idle DRR holds no flow state yet");
        // Pile up a backlog from many flows, then check mid-flight.
        let l = Rc::clone(&link);
        let probe = Rc::new(Cell::new(0usize));
        let p = Rc::clone(&probe);
        sim.run_until(async move {
            for flow in 0..32u32 {
                let l2 = Rc::clone(&l);
                l.spawn_traverse_for_test(flow, &l2);
            }
            // Let the backlog form, then record the live charge.
            l.sim_for_test().sleep(SimDuration::from_micros(50)).await;
            p.set(l.resident_bytes());
            l.sim_for_test().sleep(SimDuration::from_millis(100)).await;
        });
        assert!(probe.get() > idle, "backlogged DRR charges deficit state");
    }

    #[test]
    fn fabric_routes_by_division_and_grows_lazily() {
        let sim = Sim::new();
        let fabric = Fabric::new(
            &sim,
            FabricConfig {
                fanout: 4,
                ..FabricConfig::new(NicSpec::gigabit())
            },
        );
        assert_eq!(fabric.agg_count(), 0, "no switches before first route");
        let a = fabric.agg_of(0);
        let b = fabric.agg_of(3);
        let c = fabric.agg_of(4);
        assert!(Rc::ptr_eq(&a, &b), "ids 0..4 share one aggregation switch");
        assert!(!Rc::ptr_eq(&a, &c), "id 4 hangs off the next switch");
        assert_eq!(fabric.agg_count(), 2);
        // A far-off id materializes the whole index range below it.
        fabric.agg_of(41);
        assert_eq!(fabric.agg_count(), 11);
        // 11 aggs + the core, each at the pinned FIFO model.
        assert_eq!(fabric.resident_bytes(), 12 * 360);
    }

    #[test]
    fn fabric_stages_inherit_the_port_policy() {
        let sim = Sim::new();
        let fabric = Fabric::new(
            &sim,
            FabricConfig {
                port_sched: PortPolicy::drr(),
                ..FabricConfig::new(NicSpec::gigabit())
            },
        );
        assert_eq!(fabric.core().policy_label(), "port-drr");
        assert_eq!(fabric.agg_of(0).policy_label(), "port-drr");
        assert_eq!(fabric.config().port_sched, PortPolicy::drr());
    }

    #[test]
    fn fabric_path_crosses_agg_then_core_and_reverses() {
        let sim = Sim::new();
        let fabric = Fabric::new(
            &sim,
            FabricConfig {
                fanout: 2,
                ..FabricConfig::new(NicSpec::fast_ethernet())
            },
        );
        let (cnic, crx) = Nic::new(&sim, "client", NicSpec::gigabit());
        let (id, path, port_rx) = fabric.attach(&cnic, NicSpec::gigabit());
        assert_eq!(id, 0);
        assert_eq!(path.flow, id, "client id doubles as flow id");
        assert_eq!(path.via.len(), 2, "agg stage then core stage");
        let reply = path.reversed();
        assert_eq!(reply.via.len(), 2);
        // Reply unwinds inside out: core first, then the agg.
        assert!(Rc::ptr_eq(&reply.via[0].0, &fabric.core()));
        assert_eq!(reply.via[0].1, LinkDir::ToClients);
        path.send(vec![1u8; 1400]);
        sim.run_until(async move { port_rx.recv().await.unwrap() });
        assert_eq!(fabric.agg_of(id).datagrams(LinkDir::ToServer), 1);
        assert_eq!(fabric.core().datagrams(LinkDir::ToServer), 1);
        reply.send(vec![2u8; 200]);
        sim.run_until(async move { crx.recv().await.unwrap() });
        assert_eq!(fabric.core().datagrams(LinkDir::ToClients), 1);
        assert_eq!(fabric.agg_of(id).datagrams(LinkDir::ToClients), 1);
    }

    #[test]
    fn fabric_alloc_ids_reserves_dense_ranges() {
        let sim = Sim::new();
        let fabric = Fabric::new(&sim, FabricConfig::new(NicSpec::gigabit()));
        let (cnic, _crx) = Nic::new(&sim, "client", NicSpec::gigabit());
        let (first, _, _) = fabric.attach(&cnic, NicSpec::gigabit());
        let base = fabric.alloc_ids(100_000);
        let (next, _, _) = fabric.attach(&cnic, NicSpec::gigabit());
        assert_eq!(first, 0);
        assert_eq!(base, 1);
        assert_eq!(next, 100_001, "flyweight range reserved densely");
    }
}

#[cfg(test)]
mod replay_tests {
    use super::*;
    use nfsperf_sim::proptest::{check, CaseOutcome};
    use nfsperf_sim::{prop_assert_eq, Semaphore};

    /// One arrival: (spawn delay µs, wire bytes, source flow).
    type Arrival = (u64, u64, u32);

    /// Runs an arrival script through a [`SharedLink`] lane under
    /// `policy`; returns each datagram's traverse-completion nanosecond,
    /// indexed by script position.
    fn run_script_lane(policy: &PortPolicy, script: &[Arrival]) -> Vec<u64> {
        let sim = Sim::new();
        let link = SharedLink::with_policy(&sim, "replay", NicSpec::fast_ethernet(), policy);
        let done: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(vec![0; script.len()]));
        let mut handles = Vec::new();
        for (i, &(delay, wire, flow)) in script.iter().enumerate() {
            let sim2 = sim.clone();
            let link = Rc::clone(&link);
            let done = Rc::clone(&done);
            handles.push(sim.spawn(async move {
                sim2.sleep(SimDuration::from_micros(delay)).await;
                link.traverse(flow, LinkDir::ToServer, wire as usize, wire as usize)
                    .await;
                done.borrow_mut()[i] = sim2.now().as_nanos();
            }));
        }
        sim.run_until(async move {
            for h in handles {
                h.await;
            }
        });
        Rc::try_unwrap(done).unwrap().into_inner()
    }

    /// The same script against the raw one-permit semaphore lane the
    /// link used before port scheduling existed (the old `traverse`
    /// body, verbatim).
    fn run_script_semaphore(script: &[Arrival]) -> Vec<u64> {
        let sim = Sim::new();
        let spec = NicSpec::fast_ethernet();
        let wire_sem = Rc::new(Semaphore::new(1));
        let done: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(vec![0; script.len()]));
        let mut handles = Vec::new();
        for (i, &(delay, wire, _flow)) in script.iter().enumerate() {
            let sim2 = sim.clone();
            let wire_sem = Rc::clone(&wire_sem);
            let done = Rc::clone(&done);
            handles.push(sim.spawn(async move {
                sim2.sleep(SimDuration::from_micros(delay)).await;
                {
                    let _wire = wire_sem.acquire().await;
                    sim2.sleep(spec.transfer_time(wire as usize)).await;
                }
                done.borrow_mut()[i] = sim2.now().as_nanos();
            }));
        }
        sim.run_until(async move {
            for h in handles {
                h.await;
            }
        });
        Rc::try_unwrap(done).unwrap().into_inner()
    }

    /// FIFO bit-compatibility: on randomized arrival scripts — bursts of
    /// simultaneous arrivals, barging, slot steals and all — the
    /// engine-backed FIFO lane must complete every datagram at the
    /// identical simulated nanosecond the raw semaphore lane did.
    #[test]
    fn prop_port_fifo_replays_semaphore_lane() {
        check(
            "prop_port_fifo_replays_semaphore_lane",
            |g| {
                g.vec(1, 24, |g| {
                    (g.u64_in(0, 300), g.u64_in(64, 9000), g.u32_in(0, 3))
                })
            },
            |script| {
                prop_assert_eq!(
                    run_script_lane(&PortPolicy::Fifo, script),
                    run_script_semaphore(script)
                );
                CaseOutcome::Pass
            },
        );
    }

    /// Fixed-script FIFO replay for the scenarios the property test may
    /// not hit every run: simultaneous arrivals and barge-prone gaps.
    #[test]
    fn port_fifo_replays_semaphore_on_barge_heavy_scripts() {
        let scripts: &[&[Arrival]] = &[
            &[(0, 1500, 0), (0, 1500, 1), (0, 1500, 2), (0, 1500, 0)],
            &[(0, 9000, 0), (100, 64, 1), (100, 64, 2), (700, 1500, 0), (701, 64, 1)],
            &[(0, 64, 0), (1, 64, 0), (2, 64, 0), (3, 9000, 1), (3, 64, 2), (500, 128, 0)],
        ];
        for (i, script) in scripts.iter().enumerate() {
            assert_eq!(
                run_script_lane(&PortPolicy::Fifo, script),
                run_script_semaphore(script),
                "script {i}"
            );
        }
    }

    /// S2 regression: meter/datagram accounting must be ordered with the
    /// scheduler's dequeues. A victim flow promoted past a hog backlog by
    /// DRR must observe, the instant its traverse returns, a byte meter
    /// equal to exactly the datagrams served before it plus itself — not
    /// a count lagging (or racing ahead of) the dequeue order.
    #[test]
    fn drr_meter_advances_in_dequeue_order() {
        let sim = Sim::new();
        // Quantum = one victim frame: the hand trace below is exact.
        let link = SharedLink::with_policy(
            &sim,
            "uplink",
            NicSpec::fast_ethernet(),
            &PortPolicy::Drr { quantum: 1500 },
        );
        const HOG_BYTES: u64 = 9000;
        const VICTIM_BYTES: u64 = 1500;
        // Hog floods eight jumbo frames at t=0; the victim's single small
        // frame arrives a hair later, behind the whole backlog.
        let mut handles = Vec::new();
        for _ in 0..8 {
            let link = Rc::clone(&link);
            handles.push(sim.spawn(async move {
                link.traverse(0, LinkDir::ToServer, HOG_BYTES as usize, HOG_BYTES as usize)
                    .await;
            }));
        }
        let observed: Rc<Cell<(u64, u64)>> = Rc::new(Cell::new((0, 0)));
        let obs = Rc::clone(&observed);
        let l = Rc::clone(&link);
        let s = sim.clone();
        handles.push(sim.spawn(async move {
            s.sleep(SimDuration::from_micros(1)).await;
            l.traverse(1, LinkDir::ToServer, VICTIM_BYTES as usize, VICTIM_BYTES as usize)
                .await;
            obs.set((
                l.datagrams(LinkDir::ToServer),
                l.bytes(LinkDir::ToServer),
            ));
        }));
        sim.run_until(async move {
            for h in handles {
                h.await;
            }
        });
        let (datagrams_at_victim, bytes_at_victim) = observed.get();
        // DRR promotes the victim past the hog backlog: it completes
        // second, not ninth as FIFO would have it.
        assert_eq!(datagrams_at_victim, 2, "victim served right after the in-service hog frame");
        // The meter at that instant covers exactly the dequeues so far:
        // one hog frame plus the victim. Nothing lagging, nothing early.
        assert_eq!(
            bytes_at_victim,
            HOG_BYTES + VICTIM_BYTES,
            "meter must match the dequeue prefix"
        );
        // Final accounting covers everything.
        assert_eq!(link.datagrams(LinkDir::ToServer), 9);
        assert_eq!(link.bytes(LinkDir::ToServer), 8 * HOG_BYTES + VICTIM_BYTES);
    }

    /// Two backlogged flows under DRR share the lane near 50/50 in bytes
    /// even when one sends frames six times larger.
    #[test]
    fn drr_lane_is_byte_fair_across_frame_sizes() {
        let order: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let sim = Sim::new();
        let link = SharedLink::with_policy(
            &sim,
            "uplink",
            NicSpec::fast_ethernet(),
            &PortPolicy::Drr { quantum: 9000 },
        );
        let mut handles = Vec::new();
        for (flow, wire, count) in [(0u32, 9000usize, 6u32), (1, 1500, 36)] {
            for _ in 0..count {
                let link = Rc::clone(&link);
                let order = Rc::clone(&order);
                handles.push(sim.spawn(async move {
                    link.traverse(flow, LinkDir::ToServer, wire, wire).await;
                    order.borrow_mut().push(flow);
                }));
            }
        }
        sim.run_until(async move {
            for h in handles {
                h.await;
            }
        });
        // In every prefix after the first rotation, flow 0's served bytes
        // (9000/frame) and flow 1's (1500/frame) stay within one quantum
        // plus one max frame of each other.
        let mut served = [0i64, 0i64];
        for (i, &flow) in order.borrow().iter().enumerate() {
            served[flow as usize] += if flow == 0 { 9000 } else { 1500 };
            if (2..40).contains(&i) {
                assert!(
                    (served[0] - served[1]).abs() <= 9000 + 9000,
                    "byte divergence {} at prefix {i}",
                    served[0] - served[1]
                );
            }
        }
    }
}

#[cfg(test)]
impl SharedLink {
    /// Test helper: spawn a traversal of one full-MTU frame from `flow`.
    fn spawn_traverse_for_test(&self, flow: u32, link: &Rc<SharedLink>) {
        let link = Rc::clone(link);
        self.sim.spawn(async move {
            link.traverse(flow, LinkDir::ToServer, 1500, 1400).await;
        });
    }

    fn sim_for_test(&self) -> Sim {
        self.sim.clone()
    }
}
