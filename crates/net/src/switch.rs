//! Shared-bottleneck switch model for multi-client topologies.
//!
//! The paper's test bed connects one client and one server through an
//! Extreme Networks Summit7i, so a single [`crate::Path`] between two
//! NICs is enough. Scaling the client side out changes that: every
//! client's traffic funnels into the *same* server uplink, and the
//! interesting question becomes which resource saturates first — the
//! shared wire, the server NIC, or the server's service loop.
//!
//! [`SharedLink`] models that funnel: one full-duplex link with a
//! serialization lane per direction. Any number of [`crate::Path`]s can
//! route `via` the link; datagrams from different paths contend for the
//! lane in arrival order, exactly as frames queue on a switch uplink
//! port. [`Switch`] bundles the bookkeeping for the common topology —
//! N client NICs, one server behind one uplink — so experiment code can
//! attach clients one line at a time.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use nfsperf_sim::{ByteMeter, Counter, Receiver, Semaphore, Sim, SimDuration};

use crate::nic::{DatagramPayload, Nic, NicSpec};
use crate::Path;

/// Which way a datagram crosses a [`SharedLink`].
///
/// The two directions are independent lanes (full duplex): replies never
/// contend with requests, matching switched Ethernet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDir {
    /// From a client port toward the server uplink.
    ToServer,
    /// From the server uplink back toward a client port.
    ToClients,
}

impl LinkDir {
    /// The opposite direction (used by [`Path::reversed`]).
    pub fn flipped(self) -> LinkDir {
        match self {
            LinkDir::ToServer => LinkDir::ToClients,
            LinkDir::ToClients => LinkDir::ToServer,
        }
    }

    fn lane(self) -> usize {
        match self {
            LinkDir::ToServer => 0,
            LinkDir::ToClients => 1,
        }
    }
}

struct Lane {
    wire: Rc<Semaphore>,
    meter: ByteMeter,
    datagrams: Counter,
}

impl Lane {
    fn new() -> Lane {
        Lane {
            wire: Rc::new(Semaphore::new(1)),
            meter: ByteMeter::new(),
            datagrams: Counter::new(),
        }
    }
}

/// One full-duplex link shared by many paths — the server's uplink port.
///
/// Each traversal serializes the datagram's wire bytes at the link rate
/// while holding the directional lane, so concurrent senders queue
/// behind each other. The rate comes from a [`NicSpec`] so the link can
/// mirror the server's own interface (e.g. the knfsd's bus-limited NIC),
/// putting the fleet bottleneck where the paper's hardware had it.
pub struct SharedLink {
    sim: Sim,
    /// Link name (for reports).
    pub name: &'static str,
    spec: NicSpec,
    lanes: [Lane; 2],
}

impl SharedLink {
    /// Creates a shared link running at `spec`'s rate in each direction.
    pub fn new(sim: &Sim, name: &'static str, spec: NicSpec) -> Rc<SharedLink> {
        Rc::new(SharedLink {
            sim: sim.clone(),
            name,
            spec,
            lanes: [Lane::new(), Lane::new()],
        })
    }

    /// The link's rate/MTU description.
    pub fn spec(&self) -> NicSpec {
        self.spec
    }

    /// Carries one datagram of `wire_len` wire bytes (`payload_len`
    /// payload) across the link, queueing behind other traffic in the
    /// same direction.
    pub async fn traverse(&self, dir: LinkDir, wire_len: usize, payload_len: usize) {
        let lane = &self.lanes[dir.lane()];
        {
            let _wire = lane.wire.acquire().await;
            self.sim.sleep(self.spec.transfer_time(wire_len)).await;
        }
        lane.meter.record(self.sim.now(), payload_len as u64);
        lane.datagrams.inc();
    }

    /// Payload bytes carried in `dir` (excluding framing).
    pub fn bytes(&self, dir: LinkDir) -> u64 {
        self.lanes[dir.lane()].meter.bytes()
    }

    /// Datagrams carried in `dir`.
    pub fn datagrams(&self, dir: LinkDir) -> u64 {
        self.lanes[dir.lane()].datagrams.get()
    }

    /// Mean payload throughput in `dir` over the active period, MB/s.
    pub fn throughput_mbps(&self, dir: LinkDir) -> f64 {
        self.lanes[dir.lane()].meter.throughput_mbps()
    }
}

/// The common fleet topology: N clients, one server, one shared uplink.
///
/// Each attached client gets a dedicated server-side *port* NIC (the
/// switch port demultiplexes by source, as a UDP server demultiplexes by
/// peer address) and a [`Path`] routed `via` the shared uplink, so all
/// clients contend for the same wire into the server.
pub struct Switch {
    sim: Sim,
    uplink: Rc<SharedLink>,
    latency: nfsperf_sim::SimDuration,
}

impl Switch {
    /// Creates a switch whose server uplink runs at `uplink_spec`'s rate.
    pub fn new(sim: &Sim, uplink_spec: NicSpec, latency: nfsperf_sim::SimDuration) -> Switch {
        Switch {
            sim: sim.clone(),
            uplink: SharedLink::new(sim, "uplink", uplink_spec),
            latency,
        }
    }

    /// Attaches a client NIC: creates the server-side port NIC and
    /// returns the client→server path (routed via the uplink) plus the
    /// port's receive queue for the server to drain.
    pub fn attach(
        &self,
        client: &Rc<Nic>,
        port_spec: NicSpec,
    ) -> (Path, Receiver<DatagramPayload>) {
        let (port, port_rx) = Nic::new(&self.sim, "server-port", port_spec);
        let path = Path::new(Rc::clone(client), port, self.latency)
            .via_shared(Rc::clone(&self.uplink), LinkDir::ToServer);
        (path, port_rx)
    }

    /// The shared server uplink.
    pub fn uplink(&self) -> &Rc<SharedLink> {
        &self.uplink
    }
}

/// Parameters of a multi-stage [`Fabric`].
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Clients per aggregation switch (the edge fan-in of each tier-1
    /// device).
    pub fanout: usize,
    /// Each aggregation switch's uplink rate into the core. Provisioned
    /// well above the core by default, so the *server's* uplink — not the
    /// fabric — stays the bottleneck, as in the flat [`Switch`] topology.
    pub agg_spec: NicSpec,
    /// The core uplink into the server (normally the server NIC's rate).
    pub core_spec: NicSpec,
    /// One-way propagation + store-and-forward latency end to end.
    pub latency: SimDuration,
}

impl FabricConfig {
    /// A fabric whose core uplink runs at `core_spec`'s rate: 1024-way
    /// aggregation switches with 10 Gb/s uplinks, default path latency.
    pub fn new(core_spec: NicSpec) -> FabricConfig {
        FabricConfig {
            fanout: 1024,
            agg_spec: NicSpec {
                bandwidth_bps: 10_000_000_000,
                mtu: core_spec.mtu,
            },
            core_spec,
            latency: Path::default_latency(),
        }
    }
}

/// A two-tier switch fabric: clients → aggregation switches → one core
/// uplink → the server.
///
/// The flat [`Switch`] keeps one `Path` per client; at 10k–1M clients
/// that is the only per-client network state this topology needs, and
/// flyweight clients skip even that by traversing the shared stages
/// directly. Routing is O(1) by construction: client `id` hangs off
/// aggregation switch `id / fanout` (a dense index, no lookup table or
/// linear attach scan), and every aggregation switch uplinks into the
/// same core link.
pub struct Fabric {
    sim: Sim,
    config: FabricConfig,
    core: Rc<SharedLink>,
    /// Aggregation-tier uplinks, indexed by `client / fanout`; grown on
    /// demand as higher client ids route through the fabric.
    aggs: RefCell<Vec<Rc<SharedLink>>>,
    /// Next client id to assign (ids are dense, in attach order).
    next_id: Cell<u32>,
}

impl Fabric {
    /// Creates a fabric; aggregation switches materialize lazily as
    /// client ids route through them.
    pub fn new(sim: &Sim, config: FabricConfig) -> Fabric {
        assert!(config.fanout > 0, "a fabric needs a positive fanout");
        Fabric {
            sim: sim.clone(),
            config,
            core: SharedLink::new(sim, "core-uplink", config.core_spec),
            aggs: RefCell::new(Vec::new()),
            next_id: Cell::new(0),
        }
    }

    /// The fabric's parameters.
    pub fn config(&self) -> FabricConfig {
        self.config
    }

    /// The core uplink into the server.
    pub fn core(&self) -> Rc<SharedLink> {
        Rc::clone(&self.core)
    }

    /// One-way path latency through the fabric.
    pub fn latency(&self) -> SimDuration {
        self.config.latency
    }

    /// The aggregation switch client `id` hangs off (created on first
    /// touch). O(1): the route is the index `id / fanout`.
    pub fn agg_of(&self, id: u32) -> Rc<SharedLink> {
        let idx = id as usize / self.config.fanout;
        let mut aggs = self.aggs.borrow_mut();
        while aggs.len() <= idx {
            aggs.push(SharedLink::new(&self.sim, "agg-uplink", self.config.agg_spec));
        }
        Rc::clone(&aggs[idx])
    }

    /// Aggregation switches materialized so far.
    pub fn agg_count(&self) -> usize {
        self.aggs.borrow().len()
    }

    /// Reserves `n` dense client ids and returns the first. Flyweight
    /// tiers claim whole ranges; [`Fabric::attach`] claims one at a time.
    pub fn alloc_ids(&self, n: u32) -> u32 {
        let base = self.next_id.get();
        self.next_id.set(base + n);
        base
    }

    /// The client→server shared-link stages for `id`, in traversal
    /// order: its aggregation uplink, then the core.
    pub fn stages_to_server(&self, id: u32) -> Vec<(Rc<SharedLink>, LinkDir)> {
        vec![
            (self.agg_of(id), LinkDir::ToServer),
            (self.core(), LinkDir::ToServer),
        ]
    }

    /// Attaches one full-fidelity client NIC: assigns the next client
    /// id, creates the server-side port NIC, and returns the
    /// client→server path routed through the aggregation tier and the
    /// core uplink, plus the port's receive queue.
    pub fn attach(
        &self,
        client: &Rc<Nic>,
        port_spec: NicSpec,
    ) -> (u32, Path, Receiver<DatagramPayload>) {
        let id = self.alloc_ids(1);
        let (port, port_rx) = Nic::new(&self.sim, "server-port", port_spec);
        let mut path = Path::new(Rc::clone(client), port, self.config.latency);
        path.via = self.stages_to_server(id);
        (id, path, port_rx)
    }

    /// Estimated resident bytes of the fabric's shared state: the core
    /// plus every materialized aggregation switch (each a [`SharedLink`]
    /// with two semaphore-backed lanes). Used by the flyweight tier's
    /// per-client memory accounting.
    pub fn resident_bytes(&self) -> usize {
        let per_link = std::mem::size_of::<SharedLink>()
            + 2 * (std::mem::size_of::<Semaphore>() + 32);
        (1 + self.agg_count()) * per_link
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_sim::SimDuration;

    #[test]
    fn shared_lane_serializes_concurrent_senders() {
        let sim = Sim::new();
        // Two gigabit clients into a 100 Mb/s uplink: the shared lane,
        // not the client NICs, must pace delivery.
        let sw = Switch::new(&sim, NicSpec::fast_ethernet(), SimDuration::ZERO);
        let (a, _arx) = Nic::new(&sim, "a", NicSpec::gigabit());
        let (b, _brx) = Nic::new(&sim, "b", NicSpec::gigabit());
        let (pa, rxa) = sw.attach(&a, NicSpec::gigabit());
        let (pb, rxb) = sw.attach(&b, NicSpec::gigabit());
        pa.send(vec![1u8; 1400]);
        pb.send(vec![2u8; 1400]);
        sim.run_until(async move {
            rxa.recv().await.unwrap();
            rxb.recv().await.unwrap();
        });
        // Each 1466-wire-byte frame takes ~117 µs at 100 Mb/s on the
        // shared lane; two frames must take at least two lane slots even
        // though the senders serialized concurrently at 1 Gb/s.
        assert!(sim.now().as_nanos() >= 2 * 117_000);
        assert_eq!(sw.uplink().datagrams(LinkDir::ToServer), 2);
        assert_eq!(sw.uplink().bytes(LinkDir::ToServer), 2 * 1400);
    }

    #[test]
    fn reply_direction_does_not_contend_with_requests() {
        let sim = Sim::new();
        let sw = Switch::new(&sim, NicSpec::fast_ethernet(), SimDuration::ZERO);
        let (a, arx) = Nic::new(&sim, "a", NicSpec::gigabit());
        let (path, port_rx) = sw.attach(&a, NicSpec::gigabit());
        let reply = path.reversed();
        path.send(vec![1u8; 1400]);
        reply.send(vec![2u8; 1400]);
        sim.run_until(async move {
            port_rx.recv().await.unwrap();
            arx.recv().await.unwrap();
        });
        assert_eq!(sw.uplink().datagrams(LinkDir::ToServer), 1);
        assert_eq!(sw.uplink().datagrams(LinkDir::ToClients), 1);
        // Full duplex: both frames fit in barely more than one lane slot.
        assert!(sim.now().as_nanos() < 2 * 117_000 + 60_000);
    }

    #[test]
    fn flipped_swaps_directions() {
        assert_eq!(LinkDir::ToServer.flipped(), LinkDir::ToClients);
        assert_eq!(LinkDir::ToClients.flipped(), LinkDir::ToServer);
    }

    #[test]
    fn fabric_routes_by_division_and_grows_lazily() {
        let sim = Sim::new();
        let fabric = Fabric::new(
            &sim,
            FabricConfig {
                fanout: 4,
                ..FabricConfig::new(NicSpec::gigabit())
            },
        );
        assert_eq!(fabric.agg_count(), 0, "no switches before first route");
        let a = fabric.agg_of(0);
        let b = fabric.agg_of(3);
        let c = fabric.agg_of(4);
        assert!(Rc::ptr_eq(&a, &b), "ids 0..4 share one aggregation switch");
        assert!(!Rc::ptr_eq(&a, &c), "id 4 hangs off the next switch");
        assert_eq!(fabric.agg_count(), 2);
        // A far-off id materializes the whole index range below it.
        fabric.agg_of(41);
        assert_eq!(fabric.agg_count(), 11);
        assert!(fabric.resident_bytes() > 0);
    }

    #[test]
    fn fabric_path_crosses_agg_then_core_and_reverses() {
        let sim = Sim::new();
        let fabric = Fabric::new(
            &sim,
            FabricConfig {
                fanout: 2,
                ..FabricConfig::new(NicSpec::fast_ethernet())
            },
        );
        let (cnic, crx) = Nic::new(&sim, "client", NicSpec::gigabit());
        let (id, path, port_rx) = fabric.attach(&cnic, NicSpec::gigabit());
        assert_eq!(id, 0);
        assert_eq!(path.via.len(), 2, "agg stage then core stage");
        let reply = path.reversed();
        assert_eq!(reply.via.len(), 2);
        // Reply unwinds inside out: core first, then the agg.
        assert!(Rc::ptr_eq(&reply.via[0].0, &fabric.core()));
        assert_eq!(reply.via[0].1, LinkDir::ToClients);
        path.send(vec![1u8; 1400]);
        sim.run_until(async move { port_rx.recv().await.unwrap() });
        assert_eq!(fabric.agg_of(id).datagrams(LinkDir::ToServer), 1);
        assert_eq!(fabric.core().datagrams(LinkDir::ToServer), 1);
        reply.send(vec![2u8; 200]);
        sim.run_until(async move { crx.recv().await.unwrap() });
        assert_eq!(fabric.core().datagrams(LinkDir::ToClients), 1);
        assert_eq!(fabric.agg_of(id).datagrams(LinkDir::ToClients), 1);
    }

    #[test]
    fn fabric_alloc_ids_reserves_dense_ranges() {
        let sim = Sim::new();
        let fabric = Fabric::new(&sim, FabricConfig::new(NicSpec::gigabit()));
        let (cnic, _crx) = Nic::new(&sim, "client", NicSpec::gigabit());
        let (first, _, _) = fabric.attach(&cnic, NicSpec::gigabit());
        let base = fabric.alloc_ids(100_000);
        let (next, _, _) = fabric.attach(&cnic, NicSpec::gigabit());
        assert_eq!(first, 0);
        assert_eq!(base, 1);
        assert_eq!(next, 100_001, "flyweight range reserved densely");
    }
}
