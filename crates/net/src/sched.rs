//! Pluggable per-port scheduling for shared-link lanes.
//!
//! PR 4 made the *server's* service order a policy behind the
//! `Scheduler` trait; this module does the same for the *wire*. Every
//! contended lane of a [`crate::SharedLink`] — the flat fleet switch
//! uplink and both tiers of the multi-stage fabric — asks a
//! [`PortSched`] which queued datagram serializes next:
//!
//! - [`PortFifo`] — arrival order, bit-compatible with the bare
//!   `Semaphore` the lane used before this subsystem existed (asserted
//!   by a replay property test and by byte-identical sweep CSVs under
//!   the default policy).
//! - [`PortDrr`] — Shreedhar–Varghese deficit round robin keyed by the
//!   datagram's *source flow id*, with byte-weighted quanta and the same
//!   cost floor as `server::sched`: a flow sending jumbo datagrams and a
//!   flow sending small ones get equal wire *bytes*, not equal frames.
//! - [`PortWrr`] — weighted DRR driven by a per-flow [`WeightTable`]:
//!   each rotation tops a flow's deficit up by `quantum × weight`, so an
//!   SLA can hand one client 4× the wire share of another.
//!
//! The schedulers only order the queue; the lane itself (in
//! [`crate::switch`]) owns the single transmission slot and replicates
//! the exact admission semantics of [`nfsperf_sim::Semaphore`] — fast
//! path barging, head-only wakes, re-queue on slot steal — so that
//! `PortFifo` is not merely equivalent to the old lane but
//! *bit-identical*.

use std::cell::{Cell, RefCell};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::hash::BuildHasherDefault;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Byte cost floor, mirroring `server::sched::COST_FLOOR`: a tiny
/// datagram (a COMMIT call, a reply fragment) still occupies the lane
/// for a serialization slot, so DRR charges it as if it carried a small
/// frame. Without a floor a flow could pump unlimited runt frames
/// through a single quantum.
pub const PORT_COST_FLOOR: u64 = 512;

/// Per-flow wire weights for [`PortWrr`] (and the server's weighted
/// DRR): flow `f` earns `quantum × weight(f)` of deficit per ring
/// rotation. Flows beyond the table (and zero entries) default to
/// weight 1, so a table only needs to name the flows it privileges.
///
/// Backed by an `Arc` so one table can be threaded from an experiment's
/// config through `FabricConfig`/`ServerConfig` into every lane without
/// copies, and cloned across the deterministic runner's worker threads.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WeightTable(std::sync::Arc<Vec<u32>>);

impl WeightTable {
    /// A table assigning `weights[f]` to flow `f`.
    pub fn new(weights: Vec<u32>) -> WeightTable {
        WeightTable(std::sync::Arc::new(weights))
    }

    /// The all-ones table (every flow weight 1 — plain DRR).
    pub fn uniform() -> WeightTable {
        WeightTable::default()
    }

    /// Flow `f`'s weight (1 for flows beyond the table or zero entries —
    /// a zero weight would starve the flow forever and deadlock its
    /// senders).
    pub fn get(&self, flow: u32) -> u64 {
        match self.0.get(flow as usize) {
            Some(&w) if w > 0 => u64::from(w),
            _ => 1,
        }
    }

    /// Number of explicit entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the table has no explicit entries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// A queued lane admission: the datagram's flow id and wire-byte cost
/// plus the woken/waker handshake (the same shape as `server::sched`'s
/// `Ticket`). The lane parks the transmitting task on its ticket; the
/// scheduler hands tickets back from `pick_next` and the lane wakes
/// them.
pub struct PortTicket {
    flow: Cell<u32>,
    cost: Cell<u64>,
    woken: Cell<bool>,
    waker: RefCell<Option<Waker>>,
}

/// Free-list bound for recycled tickets; admissions beyond it fall back
/// to plain allocation.
const TICKET_POOL_CAP: usize = 64;

thread_local! {
    /// Recycled tickets, so steady-state lane admission allocates
    /// nothing. Like the simulator's wait-node pool, [`PortTicket::new`]
    /// only reuses a ticket whose strong count has fallen back to one
    /// (the pool's own reference): a lane scheduler still holding a
    /// clone can never see its ticket repurposed.
    static TICKET_POOL: RefCell<Vec<Rc<PortTicket>>> = const { RefCell::new(Vec::new()) };
}

impl PortTicket {
    /// Creates a ticket for one datagram of `cost` wire bytes from
    /// `flow`, reusing a retired ticket when the pool has one.
    pub fn new(flow: u32, cost: u64) -> Rc<PortTicket> {
        TICKET_POOL.with(|p| {
            let mut free = p.borrow_mut();
            while let Some(t) = free.pop() {
                if Rc::strong_count(&t) == 1 {
                    t.flow.set(flow);
                    t.cost.set(cost);
                    t.woken.set(false);
                    t.waker.borrow_mut().take();
                    return t;
                }
                // A holder is still alive somewhere; forget this one.
            }
            Rc::new(PortTicket {
                flow: Cell::new(flow),
                cost: Cell::new(cost),
                woken: Cell::new(false),
                waker: RefCell::new(None),
            })
        })
    }

    /// Returns a retired ticket to the pool.
    pub(crate) fn recycle(t: Rc<PortTicket>) {
        TICKET_POOL.with(|p| {
            let mut free = p.borrow_mut();
            if free.len() < TICKET_POOL_CAP {
                free.push(t);
            }
        });
    }

    /// The datagram's source flow id.
    pub fn flow(&self) -> u32 {
        self.flow.get()
    }

    /// The datagram's wire-byte cost (pre-floor).
    pub fn cost(&self) -> u64 {
        self.cost.get()
    }

    pub(crate) fn wake(&self) {
        self.woken.set(true);
        if let Some(w) = self.waker.borrow_mut().take() {
            w.wake();
        }
    }

    /// Re-arms the handshake so the ticket can queue again after a
    /// lane-slot steal.
    pub(crate) fn rearm(&self) {
        self.woken.set(false);
    }

    /// Whether the lane has picked and woken this ticket (poll-style
    /// analogue of `TicketWait` completing).
    pub(crate) fn is_woken(&self) -> bool {
        self.woken.get()
    }

    /// Stores a waker for the next wake — the poll-style analogue of
    /// `TicketWait` returning `Poll::Pending`. Callers must check
    /// [`PortTicket::is_woken`] first.
    pub(crate) fn park(&self, waker: Waker) {
        *self.waker.borrow_mut() = Some(waker);
    }
}

/// Future that parks a task until its ticket is picked and woken.
pub(crate) struct TicketWait {
    pub(crate) ticket: Rc<PortTicket>,
}

impl Future for TicketWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.ticket.woken.get() {
            Poll::Ready(())
        } else {
            *self.ticket.waker.borrow_mut() = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// A wire-ordering policy for one lane.
///
/// The lane owns the single serialization slot; the scheduler owns the
/// order. `enqueue` admits a ticket, `pick_next` removes and returns the
/// next to serialize (charging any deficit), and `ungrant` refunds a
/// pick whose lane slot was stolen by a fast-path arrival before the
/// woken task ran (the ticket re-enters via `enqueue`).
pub trait PortSched {
    /// Policy name for reports (`port-fifo`, `port-drr`, `port-wrr`).
    fn label(&self) -> &'static str;

    /// Admits a ticket to the queue.
    fn enqueue(&self, ticket: Rc<PortTicket>);

    /// Removes and returns the next ticket to serialize, or `None` if
    /// nothing is queued.
    fn pick_next(&self) -> Option<Rc<PortTicket>>;

    /// Refunds a pick whose slot was stolen; the same `(flow, cost)`
    /// will re-enqueue immediately after.
    fn ungrant(&self, _flow: u32, _cost: u64) {}

    /// Number of queued tickets.
    fn queued(&self) -> usize;

    /// Live bytes of policy state *beyond* the lane's fixed arbiter
    /// model (deficit tables, rings, per-flow queues). Zero for the
    /// FIFO, whose single queue is covered by the arbiter allowance —
    /// this is what the flyweight memory ledger charges per lane.
    fn resident_bytes(&self) -> usize;
}

/// Arrival-order wire scheduling — the pre-subsystem semaphore lane.
#[derive(Default)]
pub struct PortFifo {
    queue: RefCell<VecDeque<Rc<PortTicket>>>,
}

impl PortSched for PortFifo {
    fn label(&self) -> &'static str {
        "port-fifo"
    }

    fn enqueue(&self, ticket: Rc<PortTicket>) {
        self.queue.borrow_mut().push_back(ticket);
    }

    fn pick_next(&self) -> Option<Rc<PortTicket>> {
        self.queue.borrow_mut().pop_front()
    }

    fn queued(&self) -> usize {
        self.queue.borrow().len()
    }

    fn resident_bytes(&self) -> usize {
        // The semaphore-era lane model already budgets a small waiter
        // queue; FIFO keeps exactly that footprint.
        0
    }
}

/// Per-flow DRR state: the flow's ticket queue and accumulated byte
/// credit. Entries exist only while a flow is backlogged (or holds an
/// `ungrant` refund awaiting its re-enqueue), so a million idle flows
/// cost the lane nothing.
struct DrrFlow {
    queue: VecDeque<Rc<PortTicket>>,
    deficit: u64,
    in_ring: bool,
}

impl DrrFlow {
    fn new() -> DrrFlow {
        DrrFlow {
            queue: VecDeque::new(),
            deficit: 0,
            in_ring: false,
        }
    }
}

/// Deterministic hasher: flows hash with fixed SipHash keys so nothing
/// about the table depends on process-level randomness (lookups never
/// iterate, but determinism here costs nothing).
type FlowMap = HashMap<u32, DrrFlow, BuildHasherDefault<DefaultHasher>>;

struct PortDrrInner {
    flows: FlowMap,
    /// Round-robin ring of flow ids with queued work.
    ring: VecDeque<u32>,
    queued: usize,
}

/// DRR core shared by [`PortDrr`] (uniform weights) and [`PortWrr`]
/// (table-driven weights) — the same quantum/cost-floor arithmetic as
/// `server::sched::DrrCore`, keyed by flow id instead of client id and
/// with a sparse flow table instead of a dense client vector (flow ids
/// reach into the millions on a fabric; only backlogged flows
/// materialize state).
struct PortDrrCore {
    label: &'static str,
    quantum: u64,
    weights: WeightTable,
    inner: RefCell<PortDrrInner>,
}

impl PortDrrCore {
    fn new(label: &'static str, quantum: u64, weights: WeightTable) -> PortDrrCore {
        assert!(quantum > 0, "port DRR quantum must be positive");
        PortDrrCore {
            label,
            quantum,
            weights,
            inner: RefCell::new(PortDrrInner {
                flows: FlowMap::default(),
                ring: VecDeque::new(),
                queued: 0,
            }),
        }
    }

    fn cost(wire: u64) -> u64 {
        wire.max(PORT_COST_FLOOR)
    }
}

impl PortSched for PortDrrCore {
    fn label(&self) -> &'static str {
        self.label
    }

    fn enqueue(&self, ticket: Rc<PortTicket>) {
        let flow = ticket.flow();
        let mut inner = self.inner.borrow_mut();
        let st = inner.flows.entry(flow).or_insert_with(DrrFlow::new);
        st.queue.push_back(ticket);
        let join = !st.in_ring;
        st.in_ring = true;
        inner.queued += 1;
        if join {
            inner.ring.push_back(flow);
        }
    }

    fn pick_next(&self) -> Option<Rc<PortTicket>> {
        let mut inner = self.inner.borrow_mut();
        loop {
            let &flow = inner.ring.front()?;
            let head_cost = match inner.flows.get(&flow) {
                Some(st) if !st.queue.is_empty() => PortDrrCore::cost(st.queue[0].cost()),
                // Drained while keeping its ring slot (possible after an
                // ungrant/re-enqueue shuffle): retire the flow and forget
                // its credit, as DRR does for any idling flow.
                _ => {
                    inner.ring.pop_front();
                    inner.flows.remove(&flow);
                    continue;
                }
            };
            let st = inner.flows.get_mut(&flow).expect("checked above");
            if st.deficit < head_cost {
                st.deficit += self.quantum * self.weights.get(flow);
                inner.ring.rotate_left(1);
                continue;
            }
            st.deficit -= head_cost;
            let ticket = st.queue.pop_front().expect("non-empty flow queue");
            let empty = st.queue.is_empty();
            inner.queued -= 1;
            if empty {
                inner.ring.pop_front();
                inner.flows.remove(&flow);
            }
            return Some(ticket);
        }
    }

    fn ungrant(&self, flow: u32, cost: u64) {
        // Refund the byte cost pick_next charged; the ticket is about to
        // re-enqueue and would otherwise pay twice. The entry may have
        // been retired when its queue drained — recreate it; the
        // re-enqueue puts the flow back in the ring.
        let mut inner = self.inner.borrow_mut();
        inner
            .flows
            .entry(flow)
            .or_insert_with(DrrFlow::new)
            .deficit += PortDrrCore::cost(cost);
    }

    fn queued(&self) -> usize {
        self.inner.borrow().queued
    }

    fn resident_bytes(&self) -> usize {
        let inner = self.inner.borrow();
        let per_entry = std::mem::size_of::<(u32, DrrFlow)>();
        let queues: usize = inner
            .flows
            .values()
            .map(|st| st.queue.capacity() * std::mem::size_of::<Rc<PortTicket>>())
            .sum();
        inner.flows.capacity() * per_entry
            + inner.ring.capacity() * std::mem::size_of::<u32>()
            + queues
    }
}

/// Deficit round robin across source flows, byte-weighted quanta.
pub struct PortDrr(PortDrrCore);

impl PortDrr {
    /// Creates a port DRR scheduler with the given per-rotation byte
    /// quantum.
    pub fn new(quantum: u64) -> PortDrr {
        PortDrr(PortDrrCore::new("port-drr", quantum, WeightTable::uniform()))
    }
}

impl PortSched for PortDrr {
    fn label(&self) -> &'static str {
        self.0.label()
    }
    fn enqueue(&self, ticket: Rc<PortTicket>) {
        self.0.enqueue(ticket);
    }
    fn pick_next(&self) -> Option<Rc<PortTicket>> {
        self.0.pick_next()
    }
    fn ungrant(&self, flow: u32, cost: u64) {
        self.0.ungrant(flow, cost);
    }
    fn queued(&self) -> usize {
        self.0.queued()
    }
    fn resident_bytes(&self) -> usize {
        self.0.resident_bytes()
    }
}

/// Weighted DRR: flow `f` earns `quantum × weight(f)` per rotation.
pub struct PortWrr(PortDrrCore);

impl PortWrr {
    /// Creates a weighted port scheduler from a per-flow weight table.
    pub fn new(quantum: u64, weights: WeightTable) -> PortWrr {
        PortWrr(PortDrrCore::new("port-wrr", quantum, weights))
    }
}

impl PortSched for PortWrr {
    fn label(&self) -> &'static str {
        self.0.label()
    }
    fn enqueue(&self, ticket: Rc<PortTicket>) {
        self.0.enqueue(ticket);
    }
    fn pick_next(&self) -> Option<Rc<PortTicket>> {
        self.0.pick_next()
    }
    fn ungrant(&self, flow: u32, cost: u64) {
        self.0.ungrant(flow, cost);
    }
    fn queued(&self) -> usize {
        self.0.queued()
    }
    fn resident_bytes(&self) -> usize {
        self.0.resident_bytes()
    }
}

/// Port scheduling policy selection, carried by switch and fabric
/// configs (and the `--port-sched` CLI flag).
#[derive(Clone, Debug, Default, PartialEq)]
pub enum PortPolicy {
    /// Arrival order (the default; the paper's Summit7i serves frames
    /// FIFO, and the reproduced figures must not move).
    #[default]
    Fifo,
    /// Deficit round robin across source flows.
    Drr {
        /// Wire-byte credit added per ring rotation.
        quantum: u64,
    },
    /// Weighted DRR from a per-flow weight table.
    Wrr {
        /// Base wire-byte credit added per ring rotation (scaled by each
        /// flow's weight).
        quantum: u64,
        /// Per-flow weights.
        weights: WeightTable,
    },
}

impl PortPolicy {
    /// Default per-rotation quantum: one largest WRITE datagram's wire
    /// bytes, mirroring the server scheduler's default.
    pub const DEFAULT_QUANTUM: u64 = 32 * 1024;

    /// DRR with the default quantum.
    pub fn drr() -> PortPolicy {
        PortPolicy::Drr {
            quantum: PortPolicy::DEFAULT_QUANTUM,
        }
    }

    /// WRR with the default quantum and the given table.
    pub fn wrr(weights: WeightTable) -> PortPolicy {
        PortPolicy::Wrr {
            quantum: PortPolicy::DEFAULT_QUANTUM,
            weights,
        }
    }

    /// Policy name for reports and CSV cells.
    pub fn label(&self) -> &'static str {
        match self {
            PortPolicy::Fifo => "port-fifo",
            PortPolicy::Drr { .. } => "port-drr",
            PortPolicy::Wrr { .. } => "port-wrr",
        }
    }

    /// Parses a CLI policy name (`port-fifo`, `port-drr`, `port-wrr`;
    /// the bare `fifo`/`drr`/`wrr` spellings also work), with default
    /// parameters — a parsed WRR starts from the uniform table and takes
    /// real weights from the experiment config.
    pub fn parse(s: &str) -> Option<PortPolicy> {
        match s {
            "port-fifo" | "fifo" => Some(PortPolicy::Fifo),
            "port-drr" | "drr" => Some(PortPolicy::drr()),
            "port-wrr" | "wrr" => Some(PortPolicy::wrr(WeightTable::uniform())),
            _ => None,
        }
    }

    /// Builds one lane's scheduler.
    pub fn build(&self) -> Box<dyn PortSched> {
        match self {
            PortPolicy::Fifo => Box::new(PortFifo::default()),
            PortPolicy::Drr { quantum } => Box::new(PortDrr::new(*quantum)),
            PortPolicy::Wrr { quantum, weights } => {
                Box::new(PortWrr::new(*quantum, weights.clone()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(sched: &dyn PortSched) -> Vec<u32> {
        let mut order = Vec::new();
        while let Some(t) = sched.pick_next() {
            order.push(t.flow());
        }
        order
    }

    #[test]
    fn fifo_serves_in_arrival_order() {
        let sched = PortFifo::default();
        for (flow, cost) in [(2u32, 8500u64), (0, 600), (1, 33000), (0, 8500)] {
            sched.enqueue(PortTicket::new(flow, cost));
        }
        assert_eq!(drain(&sched), vec![2, 0, 1, 0]);
        assert_eq!(sched.queued(), 0);
        assert_eq!(sched.resident_bytes(), 0);
    }

    /// The port-DRR hand trace, mirroring
    /// `server::sched`'s `drr_quantum_accounting_is_byte_weighted`: with
    /// an 8192-byte quantum, a flow sending 8192-byte frames is served
    /// four times per service of a flow sending 32768-byte frames —
    /// equal wire bytes, not equal frames.
    #[test]
    fn drr_quantum_accounting_is_byte_weighted() {
        let sched = PortDrr::new(8192);
        for _ in 0..8 {
            sched.enqueue(PortTicket::new(0, 8192));
        }
        for _ in 0..2 {
            sched.enqueue(PortTicket::new(1, 32768));
        }
        assert_eq!(drain(&sched), vec![0, 0, 0, 0, 1, 0, 0, 0, 0, 1]);
    }

    /// Hand trace of the deficit ledger itself: flow 1 (32 KB frames)
    /// needs four 8 KB top-ups before its first service, during which
    /// flow 0 (8 KB frames) is served once per rotation.
    #[test]
    fn drr_deficit_hand_trace() {
        let sched = PortDrr::new(8192);
        sched.enqueue(PortTicket::new(1, 32768));
        sched.enqueue(PortTicket::new(1, 32768));
        sched.enqueue(PortTicket::new(0, 8192));
        // Ring order: [1, 0]. Rotations: 1 tops up (8k..32k, four
        // rotations), 0 serves each time its turn comes.
        let order = drain(&sched);
        assert_eq!(order, vec![0, 1, 1]);
    }

    #[test]
    fn drr_cost_floor_charges_runt_frames() {
        // 64 runt frames at the 512-byte floor cost one 32 KB quantum:
        // flow 0 cannot squeeze more than 64 runts into one rotation.
        let sched = PortDrr::new(32 * 1024);
        for _ in 0..65 {
            sched.enqueue(PortTicket::new(0, 1));
        }
        sched.enqueue(PortTicket::new(1, 512));
        let order = drain(&sched);
        let first_flow1 = order.iter().position(|f| *f == 1).unwrap();
        assert_eq!(first_flow1, 64, "floor must cap runts per quantum");
    }

    #[test]
    fn wrr_weights_scale_the_quantum() {
        // Flow 1 has weight 4: per rotation it earns 4 quanta and sends
        // four frames to flow 0's one.
        let sched = PortWrr::new(8192, WeightTable::new(vec![1, 4]));
        for _ in 0..4 {
            sched.enqueue(PortTicket::new(0, 8192));
        }
        for _ in 0..8 {
            sched.enqueue(PortTicket::new(1, 8192));
        }
        assert_eq!(drain(&sched), vec![0, 1, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0]);
    }

    #[test]
    fn ungrant_refunds_the_charged_cost() {
        let sched = PortDrr::new(8192);
        sched.enqueue(PortTicket::new(0, 8192));
        let t = sched.pick_next().expect("pick");
        assert_eq!(sched.queued(), 0);
        // Slot stolen: refund, re-enqueue, and the next pick serves the
        // same frame without a second top-up (deficit came back).
        sched.ungrant(t.flow(), t.cost());
        sched.enqueue(Rc::clone(&t));
        let again = sched.pick_next().expect("re-pick");
        assert!(Rc::ptr_eq(&t, &again));
        assert_eq!(sched.queued(), 0);
    }

    #[test]
    fn retired_flows_free_their_state() {
        let sched = PortDrr::new(8192);
        for flow in 0..64u32 {
            sched.enqueue(PortTicket::new(flow, 1000));
        }
        assert!(sched.resident_bytes() > 0);
        while sched.pick_next().is_some() {}
        let inner = sched.0.inner.borrow();
        assert!(inner.flows.is_empty(), "idle flows must not hold state");
        assert!(inner.ring.is_empty());
    }

    #[test]
    fn weight_table_defaults_to_one() {
        let t = WeightTable::new(vec![3, 0]);
        assert_eq!(t.get(0), 3);
        assert_eq!(t.get(1), 1, "zero weight clamps to 1 (no starvation)");
        assert_eq!(t.get(99), 1, "beyond the table defaults to 1");
        assert!(WeightTable::uniform().is_empty());
        assert_eq!(WeightTable::new(vec![2]).len(), 1);
    }

    #[test]
    fn policy_parse_label_build_roundtrip() {
        for (s, label) in [
            ("port-fifo", "port-fifo"),
            ("fifo", "port-fifo"),
            ("port-drr", "port-drr"),
            ("drr", "port-drr"),
            ("port-wrr", "port-wrr"),
            ("wrr", "port-wrr"),
        ] {
            let p = PortPolicy::parse(s).expect("parse");
            assert_eq!(p.label(), label);
            assert_eq!(p.build().label(), label);
        }
        assert!(PortPolicy::parse("edf").is_none());
        assert_eq!(PortPolicy::default(), PortPolicy::Fifo);
    }
}
