//! Wire-size arithmetic: UDP/IP fragmentation and Ethernet framing.
//!
//! The paper suspects IP fragmentation as a major part of the 50 µs
//! per-RPC network cost and points at jumbo frames as the remedy; getting
//! fragment counts right therefore matters. An `rsize=wsize=8192` NFSv3
//! WRITE over UDP is an ~8.25 KB datagram, which at the standard 1500-byte
//! MTU fragments into six IP fragments; with 9000-byte jumbo frames it
//! fits in one.

use std::cell::RefCell;

/// IPv4 header bytes per fragment.
pub const IP_HEADER: usize = 20;
/// UDP header bytes (first fragment only).
pub const UDP_HEADER: usize = 8;
/// Ethernet overhead per frame: 14 header + 4 FCS + 8 preamble + 12
/// inter-frame gap.
pub const ETHERNET_OVERHEAD: usize = 38;

/// Number of IP fragments needed to carry a UDP payload of `udp_payload`
/// bytes at the given `mtu`.
///
/// Fragment payloads are multiples of 8 bytes except the last (RFC 791).
///
/// # Panics
///
/// Panics if `mtu` cannot carry any payload (≤ [`IP_HEADER`]).
pub fn fragments_for(udp_payload: usize, mtu: usize) -> usize {
    assert!(mtu > IP_HEADER + 8, "mtu {mtu} too small to fragment into");
    let total = udp_payload + UDP_HEADER;
    // Per-fragment IP payload, rounded down to an 8-byte boundary.
    let per_frag = (mtu - IP_HEADER) & !7;
    total.div_ceil(per_frag).max(1)
}

/// Total bytes on the wire (including all framing) for a UDP datagram of
/// `udp_payload` bytes sent at the given `mtu`.
pub fn wire_bytes(udp_payload: usize, mtu: usize) -> usize {
    let frags = fragments_for(udp_payload, mtu);
    udp_payload + UDP_HEADER + frags * (IP_HEADER + ETHERNET_OVERHEAD)
}

/// Free list of wire-payload buffers.
///
/// Steady-state WRITE/COMMIT traffic moves one `Vec<u8>` datagram per
/// transmission; without recycling, every RPC allocates (and frees) its
/// payload, its retransmit copies, and its reply. The pool keeps
/// retired buffers (capacity intact, length zeroed) on a bounded
/// per-thread free list so the steady state reuses them instead.
/// Thread-local because each sweep cell runs its whole simulation on
/// one worker thread; pooling never crosses simulations.
const POOL_CAP: usize = 64;

thread_local! {
    static PAYLOAD_POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Takes an empty buffer from the payload pool (or a fresh one when the
/// pool is dry). The buffer's capacity is whatever its previous life
/// grew it to.
pub fn pool_get() -> Vec<u8> {
    PAYLOAD_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default()
}

/// Copies `bytes` into a pooled buffer — the allocation-free spelling of
/// `bytes.to_vec()` once the pool has warmed up.
pub fn pool_copy(bytes: &[u8]) -> Vec<u8> {
    let mut buf = pool_get();
    buf.extend_from_slice(bytes);
    buf
}

/// Returns a retired buffer to the pool. Buffers that never allocated
/// are dropped, and the pool is bounded at [`POOL_CAP`] so a burst
/// cannot pin memory forever.
pub fn pool_put(mut buf: Vec<u8>) {
    if buf.capacity() == 0 {
        return;
    }
    buf.clear();
    PAYLOAD_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < POOL_CAP {
            pool.push(buf);
        }
    });
}

/// Buffers currently parked in this thread's pool (for tests).
pub fn pool_len() -> usize {
    PAYLOAD_POOL.with(|p| p.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_pool_recycles_capacity() {
        // Drain whatever other tests left behind so counts are ours.
        while pool_get().capacity() > 0 {}
        let mut buf = pool_get();
        buf.extend_from_slice(&[1, 2, 3]);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        pool_put(buf);
        let reused = pool_copy(&[9, 9]);
        assert_eq!(reused.as_ptr(), ptr, "pooled buffer is reused");
        assert!(reused.capacity() >= cap);
        assert_eq!(reused, vec![9, 9], "cleared before reuse");
        pool_put(reused);
        assert!(pool_len() >= 1);
        pool_put(Vec::new());
    }

    #[test]
    fn small_datagram_is_one_fragment() {
        assert_eq!(fragments_for(100, 1500), 1);
        assert_eq!(wire_bytes(100, 1500), 100 + 8 + 20 + 38);
    }

    #[test]
    fn write_rpc_fragments_six_ways_at_standard_mtu() {
        // An 8 KiB WRITE3 body plus RPC header is ~8.3 KB.
        let rpc = 8192 + 56 + 120;
        assert_eq!(fragments_for(rpc, 1500), 6);
    }

    #[test]
    fn jumbo_frames_eliminate_fragmentation() {
        let rpc = 8192 + 56 + 120;
        assert_eq!(fragments_for(rpc, 9000), 1);
        assert!(wire_bytes(rpc, 9000) < wire_bytes(rpc, 1500));
    }

    #[test]
    fn fragment_boundary_exact_fit() {
        // 1480 bytes of IP payload fit exactly in one 1500-byte fragment.
        assert_eq!(fragments_for(1480 - UDP_HEADER, 1500), 1);
        assert_eq!(fragments_for(1480 - UDP_HEADER + 1, 1500), 2);
    }

    #[test]
    fn zero_payload_still_one_fragment() {
        assert_eq!(fragments_for(0, 1500), 1);
    }

    #[test]
    fn wire_bytes_monotonic_in_payload() {
        let mut prev = 0;
        for payload in (0..20_000).step_by(997) {
            let w = wire_bytes(payload, 1500);
            assert!(w >= prev);
            assert!(w > payload);
            prev = w;
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_mtu_panics() {
        fragments_for(100, 20);
    }
}
