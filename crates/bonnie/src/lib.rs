//! The paper's benchmark: Bonnie's block sequential write test, extended
//! as described in §2.3.
//!
//! The benchmark writes 8 KB chunks into a fresh file and reports three
//! throughput numbers — after the writes, after the flush, and after the
//! close — because NFS flushes completely before last close while local
//! file systems may not. It also records *actual* per-call `write()`
//! latency rather than averages, which is what exposes the jitter and the
//! periodic spikes of Figures 2–4.

pub mod stats;

pub use stats::{decile_means, mean, mean_excluding, percentile, spike_count, trend_ratio};

use nfsperf_kernel::SimFile;
use nfsperf_sim::{Histogram, Sim, SimDuration, SimTime};

/// Bonnie's block size: 8 KB chunks.
pub const CHUNK: u64 = 8192;

/// Result of one sequential-write benchmark run.
#[derive(Debug, Clone)]
pub struct BonnieReport {
    /// Bytes written.
    pub file_size: u64,
    /// Write chunk size used.
    pub chunk: u64,
    /// Actual latency of every `write()` call, in order.
    pub latencies: Vec<SimDuration>,
    /// Time from start until the last `write()` returned.
    pub write_elapsed: SimDuration,
    /// Time from start until `fsync()` returned.
    pub flush_elapsed: SimDuration,
    /// Time from start until `close()` returned.
    pub close_elapsed: SimDuration,
}

impl BonnieReport {
    /// Throughput counting only the writes, MB/s (decimal, as the paper
    /// reports).
    pub fn write_mbps(&self) -> f64 {
        nfsperf_sim::mbps(self.file_size, self.write_elapsed)
    }

    /// Throughput through the flush, MB/s.
    pub fn flush_mbps(&self) -> f64 {
        nfsperf_sim::mbps(self.file_size, self.flush_elapsed)
    }

    /// Throughput through the close, MB/s.
    pub fn close_mbps(&self) -> f64 {
        nfsperf_sim::mbps(self.file_size, self.close_elapsed)
    }

    /// Mean `write()` latency.
    pub fn mean_latency(&self) -> SimDuration {
        mean(&self.latencies)
    }

    /// Mean latency excluding calls above `threshold` — the paper's
    /// "excluding the 37 calls exceeding 1 millisecond".
    pub fn mean_latency_excluding(&self, threshold: SimDuration) -> SimDuration {
        mean_excluding(&self.latencies, threshold)
    }

    /// The paper's Figure 5/6 histogram: 60 µs bins from 0 to 0.48 ms
    /// plus overflow.
    pub fn latency_histogram(&self) -> Histogram {
        Histogram::from_samples(SimDuration::from_micros(60), 8, &self.latencies)
    }

    /// Number of calls slower than `threshold`.
    pub fn spikes(&self, threshold: SimDuration) -> usize {
        spike_count(&self.latencies, threshold)
    }
}

/// Options for a benchmark run.
#[derive(Debug, Clone)]
pub struct BonnieConfig {
    /// Total bytes to write.
    pub file_size: u64,
    /// Chunk per `write()` call.
    pub chunk: u64,
    /// Record per-call latencies (disable for huge sweep runs).
    pub record_latencies: bool,
}

impl BonnieConfig {
    /// A run of `file_size` bytes with the paper's 8 KB chunks.
    pub fn new(file_size: u64) -> BonnieConfig {
        BonnieConfig {
            file_size,
            chunk: CHUNK,
            record_latencies: true,
        }
    }
}

/// Runs the block sequential write benchmark on an open file.
///
/// The file should be fresh (the benchmark writes from offset zero), so
/// no read-modify-write happens on the client — writing into a fresh
/// file "narrows our focus to write code pathways" (§2.3).
pub async fn run<F: SimFile>(sim: &Sim, file: &F, config: &BonnieConfig) -> BonnieReport {
    let started: SimTime = sim.now();
    let mut latencies = if config.record_latencies {
        Vec::with_capacity((config.file_size / config.chunk) as usize)
    } else {
        Vec::new()
    };
    let mut offset = 0;
    while offset < config.file_size {
        let len = config.chunk.min(config.file_size - offset);
        let t0 = sim.now();
        file.write(offset, len).await.expect("benchmark write");
        if config.record_latencies {
            latencies.push(sim.now().since(t0));
        }
        offset += len;
    }
    let write_elapsed = sim.now().since(started);
    file.fsync().await.expect("benchmark fsync");
    let flush_elapsed = sim.now().since(started);
    file.close().await.expect("benchmark close");
    let close_elapsed = sim.now().since(started);
    BonnieReport {
        file_size: config.file_size,
        chunk: config.chunk,
        latencies,
        write_elapsed,
        flush_elapsed,
        close_elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_kernel::VfsResult;
    use std::cell::Cell;

    /// A synthetic file with fixed write/fsync costs for testing the
    /// harness itself.
    struct FakeFile {
        sim: Sim,
        write_cost: SimDuration,
        fsync_cost: SimDuration,
        written: Cell<u64>,
    }

    impl SimFile for FakeFile {
        async fn write(&self, _offset: u64, len: u64) -> VfsResult<u64> {
            self.sim.sleep(self.write_cost).await;
            self.written.set(self.written.get() + len);
            Ok(len)
        }
        async fn fsync(&self) -> VfsResult<()> {
            self.sim.sleep(self.fsync_cost).await;
            Ok(())
        }
        async fn close(&self) -> VfsResult<()> {
            Ok(())
        }
        fn bytes_written(&self) -> u64 {
            self.written.get()
        }
    }

    #[test]
    fn throughput_triple_ordering() {
        let sim = Sim::new();
        let file = FakeFile {
            sim: sim.clone(),
            write_cost: SimDuration::from_micros(80),
            fsync_cost: SimDuration::from_millis(10),
            written: Cell::new(0),
        };
        let s = sim.clone();
        let report =
            sim.run_until(async move { run(&s, &file, &BonnieConfig::new(1 << 20)).await });
        assert_eq!(report.latencies.len(), 128);
        // 128 writes x 80us = 10.24ms; 1MB / 10.24ms ≈ 102 MB/s.
        assert!(
            (report.write_mbps() - 102.4).abs() < 3.0,
            "{}",
            report.write_mbps()
        );
        // Flush adds 10ms: throughput halves.
        assert!(report.flush_mbps() < report.write_mbps());
        // Close is free here: same as flush.
        assert!((report.close_mbps() - report.flush_mbps()).abs() < 1e-6);
        assert_eq!(report.file_size, 1 << 20);
    }

    #[test]
    fn latencies_recorded_per_call() {
        let sim = Sim::new();
        let file = FakeFile {
            sim: sim.clone(),
            write_cost: SimDuration::from_micros(100),
            fsync_cost: SimDuration::ZERO,
            written: Cell::new(0),
        };
        let s = sim.clone();
        let report =
            sim.run_until(async move { run(&s, &file, &BonnieConfig::new(64 * 8192)).await });
        assert_eq!(report.latencies.len(), 64);
        for l in &report.latencies {
            assert_eq!(*l, SimDuration::from_micros(100));
        }
        assert_eq!(report.mean_latency(), SimDuration::from_micros(100));
        assert_eq!(report.spikes(SimDuration::from_millis(1)), 0);
    }

    #[test]
    fn latency_recording_can_be_disabled() {
        let sim = Sim::new();
        let file = FakeFile {
            sim: sim.clone(),
            write_cost: SimDuration::from_micros(1),
            fsync_cost: SimDuration::ZERO,
            written: Cell::new(0),
        };
        let s = sim.clone();
        let report = sim.run_until(async move {
            let config = BonnieConfig {
                record_latencies: false,
                ..BonnieConfig::new(1 << 20)
            };
            run(&s, &file, &config).await
        });
        assert!(report.latencies.is_empty());
        assert!(report.write_mbps() > 0.0);
    }

    #[test]
    fn partial_tail_chunk_written() {
        let sim = Sim::new();
        let file = FakeFile {
            sim: sim.clone(),
            write_cost: SimDuration::from_micros(1),
            fsync_cost: SimDuration::ZERO,
            written: Cell::new(0),
        };
        let s = sim.clone();
        let report =
            sim.run_until(async move { run(&s, &file, &BonnieConfig::new(8192 + 100)).await });
        assert_eq!(report.latencies.len(), 2);
        assert_eq!(report.file_size, 8292);
    }

    #[test]
    fn histogram_uses_paper_bins() {
        let sim = Sim::new();
        let file = FakeFile {
            sim: sim.clone(),
            write_cost: SimDuration::from_micros(100),
            fsync_cost: SimDuration::ZERO,
            written: Cell::new(0),
        };
        let s = sim.clone();
        let report =
            sim.run_until(async move { run(&s, &file, &BonnieConfig::new(16 * 8192)).await });
        let h = report.latency_histogram();
        assert_eq!(h.bin_width(), SimDuration::from_micros(60));
        assert_eq!(h.bins().len(), 8);
        assert_eq!(h.bins()[1], 16, "100us lands in the second bin");
    }
}

/// Options for the random-write workload (the database-style access the
/// paper's §4 points at for future study).
#[derive(Debug, Clone)]
pub struct RandomConfig {
    /// Region size the offsets are drawn from.
    pub file_size: u64,
    /// Chunk per `write()` call (chunk-aligned offsets).
    pub chunk: u64,
    /// Total bytes to write.
    pub total_bytes: u64,
    /// Seed for the offset sequence.
    pub seed: u64,
}

impl RandomConfig {
    /// A random workload over `file_size` writing `total_bytes` in the
    /// paper's 8 KB chunks.
    pub fn new(file_size: u64, total_bytes: u64) -> RandomConfig {
        RandomConfig {
            file_size,
            chunk: CHUNK,
            total_bytes,
            seed: 0xd1ce,
        }
    }
}

/// Runs a random-offset write workload: chunk-aligned offsets drawn
/// uniformly from `[0, file_size)`, so pages are frequently rewritten —
/// exercising the client's request-merge and incompatible-request paths
/// that the sequential benchmark never touches.
pub async fn run_random<F: SimFile>(sim: &Sim, file: &F, config: &RandomConfig) -> BonnieReport {
    let rng = nfsperf_sim::SimRng::new(config.seed);
    let slots = (config.file_size / config.chunk).max(1);
    let started: SimTime = sim.now();
    let mut latencies = Vec::with_capacity((config.total_bytes / config.chunk) as usize);
    let mut written = 0;
    while written < config.total_bytes {
        let offset = rng.uniform_u64(0, slots) * config.chunk;
        let len = config.chunk.min(config.total_bytes - written);
        let t0 = sim.now();
        file.write(offset, len).await.expect("random write");
        latencies.push(sim.now().since(t0));
        written += len;
    }
    let write_elapsed = sim.now().since(started);
    file.fsync().await.expect("random fsync");
    let flush_elapsed = sim.now().since(started);
    file.close().await.expect("random close");
    let close_elapsed = sim.now().since(started);
    BonnieReport {
        file_size: config.total_bytes,
        chunk: config.chunk,
        latencies,
        write_elapsed,
        flush_elapsed,
        close_elapsed,
    }
}

#[cfg(test)]
mod random_tests {
    use super::*;
    use nfsperf_kernel::VfsResult;
    use std::cell::Cell;

    struct CountingFile {
        sim: Sim,
        writes: Cell<u64>,
        bytes: Cell<u64>,
        max_end: Cell<u64>,
    }

    impl SimFile for CountingFile {
        async fn write(&self, offset: u64, len: u64) -> VfsResult<u64> {
            self.sim.sleep(SimDuration::from_micros(10)).await;
            self.writes.set(self.writes.get() + 1);
            self.bytes.set(self.bytes.get() + len);
            self.max_end.set(self.max_end.get().max(offset + len));
            Ok(len)
        }
        async fn fsync(&self) -> VfsResult<()> {
            Ok(())
        }
        async fn close(&self) -> VfsResult<()> {
            Ok(())
        }
        fn bytes_written(&self) -> u64 {
            self.bytes.get()
        }
    }

    #[test]
    fn random_workload_writes_requested_bytes_within_region() {
        let sim = Sim::new();
        let file = CountingFile {
            sim: sim.clone(),
            writes: Cell::new(0),
            bytes: Cell::new(0),
            max_end: Cell::new(0),
        };
        let s = sim.clone();
        let report = sim.run_until(async move {
            let config = RandomConfig::new(1 << 20, 256 << 10);
            let r = run_random(&s, &file, &config).await;
            assert_eq!(file.bytes_written(), 256 << 10);
            assert!(file.max_end.get() <= 1 << 20, "offsets stay in region");
            r
        });
        assert_eq!(report.latencies.len(), 32);
    }

    #[test]
    fn random_workload_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let sim = Sim::new();
            let file = CountingFile {
                sim: sim.clone(),
                writes: Cell::new(0),
                bytes: Cell::new(0),
                max_end: Cell::new(0),
            };
            let s = sim.clone();
            sim.run_until(async move {
                let config = RandomConfig {
                    seed,
                    ..RandomConfig::new(1 << 20, 64 << 10)
                };
                run_random(&s, &file, &config).await;
                file.max_end.get()
            })
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
