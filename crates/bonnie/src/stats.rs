//! Latency-series statistics used by the figure runners and tests.

use nfsperf_sim::SimDuration;

// `mean` (round-to-nearest, not floor — floor biased every decile mean
// and thus the Figure 3 growth detection low by up to 1 ns per sample)
// and nearest-rank `percentile` live in `nfsperf_sim::metrics` so that
// crates below the benchmark layer (the server's request scheduler
// reports per-client p50/p99/p999 latencies) can use them too.
pub use nfsperf_sim::{mean, percentile};

/// Mean excluding samples above `threshold` — how the paper computes
/// "139.6 microseconds per call (excluding the 37 calls exceeding 1
/// millisecond)".
pub fn mean_excluding(samples: &[SimDuration], threshold: SimDuration) -> SimDuration {
    let kept: Vec<SimDuration> = samples
        .iter()
        .copied()
        .filter(|d| *d <= threshold)
        .collect();
    mean(&kept)
}

/// Number of samples above `threshold`.
pub fn spike_count(samples: &[SimDuration], threshold: SimDuration) -> usize {
    samples.iter().filter(|d| **d > threshold).count()
}

/// Means of ten equal slices of the series, in order — used to detect the
/// Figure 3 latency growth.
pub fn decile_means(samples: &[SimDuration]) -> Vec<SimDuration> {
    if samples.is_empty() {
        return Vec::new();
    }
    let n = samples.len();
    (0..10)
        .map(|d| {
            let lo = n * d / 10;
            let hi = (n * (d + 1) / 10).max(lo + 1).min(n);
            mean(&samples[lo..hi])
        })
        .collect()
}

/// Ratio of the last decile's mean to the first decile's mean; > 1 means
/// latency grows over the run.
pub fn trend_ratio(samples: &[SimDuration]) -> f64 {
    let deciles = decile_means(samples);
    match (deciles.first(), deciles.last()) {
        (Some(first), Some(last)) if first.as_nanos() > 0 => {
            last.as_nanos() as f64 / first.as_nanos() as f64
        }
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn mean_basic_and_empty() {
        assert_eq!(mean(&[]), SimDuration::ZERO);
        assert_eq!(mean(&[us(10), us(20), us(30)]), us(20));
    }

    #[test]
    fn mean_rounds_to_nearest_instead_of_flooring() {
        // 1 + 2 = 3, /2 = 1.5 → rounds to 2 (floor division gave 1).
        assert_eq!(mean(&[SimDuration(1), SimDuration(2)]), SimDuration(2));
        // 1 + 1 + 2 = 4, /3 = 1.33 → rounds to 1.
        assert_eq!(
            mean(&[SimDuration(1), SimDuration(1), SimDuration(2)]),
            SimDuration(1)
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        let samples: Vec<SimDuration> = (1..=100).map(us).collect();
        assert_eq!(percentile(&samples, 50.0), us(50));
        assert_eq!(percentile(&samples, 99.0), us(99));
        assert_eq!(percentile(&samples, 100.0), us(100));
        assert_eq!(percentile(&samples, 0.0), us(1));
        assert_eq!(percentile(&[], 50.0), SimDuration::ZERO);
        // Order-independent: reversed input gives the same answer.
        let mut rev = samples.clone();
        rev.reverse();
        assert_eq!(percentile(&rev, 99.0), us(99));
    }

    #[test]
    fn mean_excluding_drops_outliers() {
        let samples = [us(100), us(100), us(19_000)];
        assert_eq!(mean_excluding(&samples, us(1_000)), us(100));
        // The paper's observation: outliers multiply the mean.
        assert!(mean(&samples) > us(6_000));
    }

    #[test]
    fn spike_counting() {
        let samples = [us(100), us(2_000), us(100), us(5_000)];
        assert_eq!(spike_count(&samples, us(1_000)), 2);
        assert_eq!(spike_count(&samples, us(10_000)), 0);
    }

    #[test]
    fn decile_means_detect_growth() {
        // Linearly growing series.
        let samples: Vec<SimDuration> = (0..1000).map(|i| us(100 + i)).collect();
        let deciles = decile_means(&samples);
        assert_eq!(deciles.len(), 10);
        for w in deciles.windows(2) {
            assert!(w[1] > w[0], "deciles must increase");
        }
        assert!(trend_ratio(&samples) > 5.0);
    }

    #[test]
    fn flat_series_has_unit_trend() {
        let samples: Vec<SimDuration> = (0..1000).map(|_| us(100)).collect();
        let r = trend_ratio(&samples);
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trend_ratio_degenerate_cases() {
        assert_eq!(trend_ratio(&[]), 1.0);
        assert_eq!(trend_ratio(&[SimDuration::ZERO; 20]), 1.0);
    }

    #[test]
    fn decile_means_small_series() {
        let samples = [us(1), us(2), us(3)];
        let deciles = decile_means(&samples);
        assert_eq!(deciles.len(), 10);
    }
}
