//! Determinism and sensitivity: identical scenarios reproduce to the
//! nanosecond; distinct configurations actually differ.
//!
//! Determinism is what makes this reproduction *more* usable than the
//! paper's test bed — §2.2 laments that Linux benchmark runs vary so
//! much that only single-run shapes can be reported. Here the shape is a
//! pure function of the scenario and seed.

use nfsperf_client::ClientTuning;
use nfsperf_experiments::{figures, run_bonnie, Scenario, ServerKind};

#[test]
fn identical_scenarios_reproduce_exactly() {
    let scenario = Scenario::new(ClientTuning::linux_2_4_4(), ServerKind::Filer);
    let a = run_bonnie(&scenario, 5 << 20);
    let b = run_bonnie(&scenario, 5 << 20);
    assert_eq!(a.report.latencies, b.report.latencies);
    assert_eq!(a.report.write_elapsed, b.report.write_elapsed);
    assert_eq!(a.report.flush_elapsed, b.report.flush_elapsed);
    assert_eq!(a.xprt_stats, b.xprt_stats);
    assert_eq!(a.server_stats, b.server_stats);
    assert_eq!(a.mount_stats, b.mount_stats);
    assert_eq!(a.lock_stats.total_wait, b.lock_stats.total_wait);
}

#[test]
fn table1_is_reproducible() {
    let a = figures::table1();
    let b = figures::table1();
    assert_eq!(a, b);
}

#[test]
fn each_tuning_produces_a_distinct_run() {
    let size = 5 << 20;
    let runs: Vec<_> = [
        ClientTuning::linux_2_4_4(),
        ClientTuning::no_flush(),
        ClientTuning::hash_table(),
        ClientTuning::full_patch(),
    ]
    .into_iter()
    .map(|t| {
        run_bonnie(&Scenario::new(t, ServerKind::Filer), size)
            .report
            .write_elapsed
    })
    .collect();
    for i in 0..runs.len() {
        for j in i + 1..runs.len() {
            assert_ne!(
                runs[i], runs[j],
                "tunings {i} and {j} should not behave identically"
            );
        }
    }
}

#[test]
fn each_server_produces_a_distinct_run() {
    let size = 2 << 20;
    let t = ClientTuning::full_patch();
    let filer = run_bonnie(&Scenario::new(t, ServerKind::Filer), size)
        .report
        .flush_elapsed;
    let knfsd = run_bonnie(&Scenario::new(t, ServerKind::Knfsd), size)
        .report
        .flush_elapsed;
    let slow = run_bonnie(&Scenario::new(t, ServerKind::Slow100), size)
        .report
        .flush_elapsed;
    assert!(filer < knfsd, "filer flushes faster than knfsd");
    assert!(knfsd < slow, "knfsd flushes faster than the 100bT server");
}

#[test]
fn seed_changes_jitter_but_not_shape() {
    let base = Scenario::new(ClientTuning::linux_2_4_4(), ServerKind::Filer);
    let other = Scenario {
        seed: 0xABCD,
        ..base.clone()
    };
    let a = run_bonnie(&base, 5 << 20);
    let b = run_bonnie(&other, 5 << 20);
    assert_ne!(a.report.latencies, b.report.latencies, "jitter differs");
    // But the paper-level shape is seed-independent: similar spike counts
    // and similar throughput.
    let ms1 = nfsperf_sim::SimDuration::from_millis(1);
    let (sa, sb) = (a.report.spikes(ms1) as f64, b.report.spikes(ms1) as f64);
    assert!(
        (sa - sb).abs() / sa < 0.5,
        "spike counts comparable: {sa} vs {sb}"
    );
    let (ta, tb) = (a.report.write_mbps(), b.report.write_mbps());
    assert!(
        (ta - tb).abs() / ta < 0.2,
        "throughput comparable: {ta:.1} vs {tb:.1}"
    );
}
