//! Property-based tests over the core data structures and codecs.
//!
//! Driven by the in-tree `nfsperf_sim::proptest` module (seeded cases,
//! shrinking, failure-seed reporting) — one `#[test]` per property the
//! suite had under the external `proptest` crate, same assertions. A
//! failure prints the case seed; replay it with
//! `NFSPERF_PROPTEST_SEED=<seed> NFSPERF_PROPTEST_CASES=1 cargo test <name>`.

use nfsperf_sim::proptest::{check, CaseOutcome};
use nfsperf_sim::{prop_assert, prop_assert_eq, prop_assume};

use nfsperf_client::{IndexKind, NfsPageReq, RequestIndex};
use nfsperf_kernel::{split_into_pages, PAGE_SIZE};
use nfsperf_net::{fragments_for, wire_bytes};
use nfsperf_nfs3::{
    Commit3Args, Fattr3, FileHandle, NfsStat3, StableHow, WccData, Write3Args, Write3Res, WriteVerf,
};
use nfsperf_sim::{Histogram, SimDuration, SimTime};
use nfsperf_sunrpc::{
    decode_call, decode_reply, encode_call, encode_record, encode_record_frags, encode_reply,
    AuthUnix, RecordReader,
};
use nfsperf_xdr::{Decoder, Encoder, XdrDecode, XdrEncode};

// ---------------------------------------------------------------------
// XDR codec round trips.
// ---------------------------------------------------------------------

#[test]
fn xdr_u32_round_trip() {
    check("xdr_u32_round_trip", |g| g.any_u32(), |&v| {
        let mut e = Encoder::new();
        e.put_u32(v);
        let bytes = e.into_bytes();
        prop_assert_eq!(bytes.len(), 4);
        prop_assert_eq!(Decoder::new(&bytes).get_u32().unwrap(), v);
        CaseOutcome::Pass
    });
}

#[test]
fn xdr_u64_round_trip() {
    check("xdr_u64_round_trip", |g| g.any_u64(), |&v| {
        let mut e = Encoder::new();
        e.put_u64(v);
        let bytes = e.into_bytes();
        prop_assert_eq!(Decoder::new(&bytes).get_u64().unwrap(), v);
        CaseOutcome::Pass
    });
}

#[test]
fn xdr_opaque_round_trip() {
    check("xdr_opaque_round_trip", |g| g.bytes(0, 2048), |data| {
        let mut e = Encoder::new();
        e.put_opaque(data);
        let bytes = e.into_bytes();
        // Always 4-byte aligned.
        prop_assert_eq!(bytes.len() % 4, 0);
        let mut d = Decoder::new(&bytes);
        prop_assert_eq!(d.get_opaque().unwrap(), &data[..]);
        prop_assert!(d.is_empty());
        CaseOutcome::Pass
    });
}

#[test]
fn xdr_string_round_trip() {
    check("xdr_string_round_trip", |g| g.unicode_string(0, 257), |s| {
        let mut e = Encoder::new();
        e.put_string(s);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        prop_assert_eq!(&d.get_string().unwrap(), s);
        CaseOutcome::Pass
    });
}

#[test]
fn xdr_mixed_sequence_round_trip() {
    check(
        "xdr_mixed_sequence_round_trip",
        |g| (g.vec(1, 20, |g| g.any_u32()), g.bytes(0, 128)),
        |(ints, blob)| {
            let mut e = Encoder::new();
            for &v in ints {
                e.put_u32(v);
            }
            e.put_opaque(blob);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            for &v in ints {
                prop_assert_eq!(d.get_u32().unwrap(), v);
            }
            prop_assert_eq!(d.get_opaque().unwrap(), &blob[..]);
            CaseOutcome::Pass
        },
    );
}

/// A decoder never panics on arbitrary junk — it returns errors.
#[test]
fn xdr_decoder_is_panic_free() {
    check("xdr_decoder_is_panic_free", |g| g.bytes(0, 512), |junk| {
        let mut d = Decoder::new(junk);
        let _ = d.get_u32();
        let _ = d.get_opaque();
        let _ = d.get_string();
        let _ = d.get_u64();
        CaseOutcome::Pass
    });
}

// ---------------------------------------------------------------------
// NFSv3 message round trips.
// ---------------------------------------------------------------------

#[test]
fn write3_args_round_trip() {
    check(
        "write3_args_round_trip",
        |g| {
            (
                g.any_u64(),
                g.u64_in(0, 1 << 40),
                g.u32_in(0, 65536),
                g.u8_in(0, 3),
            )
        },
        |&(fileid, offset, count, stable_pick)| {
            let stable = match stable_pick {
                0 => StableHow::Unstable,
                1 => StableHow::DataSync,
                _ => StableHow::FileSync,
            };
            let args = Write3Args::new(FileHandle::for_fileid(fileid), offset, count, stable);
            let mut e = Encoder::new();
            args.encode(&mut e);
            prop_assert_eq!(e.len(), args.encoded_len());
            let bytes = e.into_bytes();
            let back = Write3Args::decode(&mut Decoder::new(&bytes)).unwrap();
            prop_assert_eq!(back, args);
            CaseOutcome::Pass
        },
    );
}

#[test]
fn write3_res_round_trip() {
    check(
        "write3_res_round_trip",
        |g| (g.any_u32(), g.any_u64(), g.any_u64()),
        |&(count, verf, size)| {
            let res = Write3Res::ok(
                WccData::full(size / 2, Fattr3::regular(3, size)),
                count,
                StableHow::FileSync,
                WriteVerf(verf),
            );
            let mut e = Encoder::new();
            res.encode(&mut e);
            let bytes = e.into_bytes();
            let back = Write3Res::decode(&mut Decoder::new(&bytes)).unwrap();
            prop_assert_eq!(back, res);
            CaseOutcome::Pass
        },
    );
}

#[test]
fn rpc_call_header_round_trip() {
    check(
        "rpc_call_header_round_trip",
        |g| {
            (
                g.any_u32(),
                g.u32_in(0, 22),
                g.any_u32(),
                g.lowercase_string(1, 33),
            )
        },
        |(xid, proc, uid, machine)| {
            let cred = AuthUnix {
                stamp: 1,
                machine: machine.clone(),
                uid: *uid,
                gid: *uid / 2,
                gids: vec![1, 2],
            };
            let args = Commit3Args {
                file: FileHandle::for_fileid(u64::from(*xid)),
                offset: 0,
                count: 0,
            };
            let msg = encode_call(*xid, 100_003, 3, *proc, &cred, &args);
            let (hdr, mut dec) = decode_call(&msg).unwrap();
            prop_assert_eq!(hdr.xid, *xid);
            prop_assert_eq!(hdr.proc, *proc);
            prop_assert_eq!(&hdr.cred, &cred);
            let back = Commit3Args::decode(&mut dec).unwrap();
            prop_assert_eq!(back, args);
            CaseOutcome::Pass
        },
    );
}

#[test]
fn rpc_reply_round_trip() {
    check(
        "rpc_reply_round_trip",
        |g| (g.any_u32(), g.u8_in(0, 4)),
        |&(xid, status_pick)| {
            let status = match status_pick {
                0 => NfsStat3::Ok,
                1 => NfsStat3::Io,
                2 => NfsStat3::Nospc,
                _ => NfsStat3::Stale,
            };
            let msg = encode_reply(xid, &(status as u32));
            let (hdr, mut dec) = decode_reply(&msg).unwrap();
            prop_assert_eq!(hdr.xid, xid);
            prop_assert_eq!(dec.get_u32().unwrap(), status as u32);
            CaseOutcome::Pass
        },
    );
}

// ---------------------------------------------------------------------
// Page splitting.
// ---------------------------------------------------------------------

#[test]
fn page_split_covers_exactly() {
    check(
        "page_split_covers_exactly",
        |g| (g.u64_in(0, 1 << 30), g.u64_in(0, 256 * 1024)),
        |&(offset, len)| {
            let segs = split_into_pages(offset, len);
            // Total coverage.
            let total: u64 = segs.iter().map(|s| s.len).sum();
            prop_assert_eq!(total, len);
            // Contiguous, ordered, within page bounds.
            let mut pos = offset;
            for s in &segs {
                prop_assert_eq!(s.file_offset(), pos);
                prop_assert!(s.len >= 1 && s.len <= PAGE_SIZE);
                prop_assert!(s.offset_in_page + s.len <= PAGE_SIZE);
                pos += s.len;
            }
            // No two segments share a page.
            for w in segs.windows(2) {
                prop_assert!(w[0].index < w[1].index);
            }
            CaseOutcome::Pass
        },
    );
}

// ---------------------------------------------------------------------
// Fragmentation arithmetic.
// ---------------------------------------------------------------------

#[test]
fn fragments_monotone_in_payload() {
    check(
        "fragments_monotone_in_payload",
        |g| (g.usize_in(0, 65536), g.usize_in(0, 65536)),
        |&(a, b)| {
            let (lo, hi) = (a.min(b), a.max(b));
            prop_assert!(fragments_for(lo, 1500) <= fragments_for(hi, 1500));
            prop_assert!(wire_bytes(lo, 1500) <= wire_bytes(hi, 1500));
            CaseOutcome::Pass
        },
    );
}

#[test]
fn bigger_mtu_never_fragments_more() {
    check(
        "bigger_mtu_never_fragments_more",
        |g| g.usize_in(0, 65536),
        |&payload| {
            prop_assert!(fragments_for(payload, 9000) <= fragments_for(payload, 1500));
            prop_assert!(wire_bytes(payload, 9000) <= wire_bytes(payload, 1500));
            CaseOutcome::Pass
        },
    );
}

#[test]
fn wire_overhead_is_bounded() {
    check(
        "wire_overhead_is_bounded",
        |g| g.usize_in(0, 65536),
        |&payload| {
            let w = wire_bytes(payload, 1500);
            prop_assert!(w > payload);
            // Overhead: <= 66 bytes per fragment plus the UDP header.
            let frags = fragments_for(payload, 1500);
            prop_assert!(w <= payload + 8 + frags * 58);
            CaseOutcome::Pass
        },
    );
}

// ---------------------------------------------------------------------
// Request index: the list and the hash agree on all operations.
// ---------------------------------------------------------------------

#[test]
fn index_kinds_are_observationally_equal() {
    check(
        "index_kinds_are_observationally_equal",
        |g| g.vec(1, 200, |g| (g.any_bool(), g.u64_in(0, 64))),
        |ops: &Vec<(bool, u64)>| {
            let mut list = RequestIndex::new(IndexKind::SortedList);
            let mut hash = RequestIndex::new(IndexKind::HashTable);
            for &(insert, page) in ops {
                if insert {
                    let in_list = list.find(page).found.is_some();
                    let in_hash = hash.find(page).found.is_some();
                    prop_assert_eq!(in_list, in_hash);
                    if !in_list {
                        list.insert(NfsPageReq::new(page, 0, PAGE_SIZE, SimTime::ZERO));
                        hash.insert(NfsPageReq::new(page, 0, PAGE_SIZE, SimTime::ZERO));
                    }
                } else {
                    let a = list.remove(page).map(|r| r.page_index);
                    let b = hash.remove(page).map(|r| r.page_index);
                    prop_assert_eq!(a, b);
                }
                prop_assert_eq!(list.len(), hash.len());
            }
            // Same final contents in the same order.
            let pa: Vec<u64> = list.iter().map(|r| r.page_index).collect();
            let pb: Vec<u64> = hash.iter().map(|r| r.page_index).collect();
            prop_assert_eq!(pa.clone(), pb);
            // Sorted invariant.
            let mut sorted = pa.clone();
            sorted.sort_unstable();
            prop_assert_eq!(pa, sorted);
            CaseOutcome::Pass
        },
    );
}

// ---------------------------------------------------------------------
// Histogram invariants.
// ---------------------------------------------------------------------

#[test]
fn histogram_conserves_samples() {
    check(
        "histogram_conserves_samples",
        |g| g.vec(0, 300, |g| g.u64_in(0, 10_000_000)),
        |samples: &Vec<u64>| {
            let durs: Vec<SimDuration> = samples.iter().map(|&n| SimDuration(n)).collect();
            let h = Histogram::from_samples(SimDuration::from_micros(60), 8, &durs);
            let binned: u64 = h.bins().iter().sum::<u64>() + h.overflow();
            prop_assert_eq!(binned, samples.len() as u64);
            prop_assert_eq!(h.count(), samples.len() as u64);
            if let Some(&max) = samples.iter().max() {
                prop_assert_eq!(h.max(), SimDuration(max));
            }
            if let Some(&min) = samples.iter().min() {
                prop_assert_eq!(h.min(), Some(SimDuration(min)));
            }
            // Mean is bounded by min and max.
            if !samples.is_empty() {
                prop_assert!(h.mean() >= h.min().unwrap());
                prop_assert!(h.mean() <= h.max());
            }
            CaseOutcome::Pass
        },
    );
}

// ---------------------------------------------------------------------
// Request merge semantics.
// ---------------------------------------------------------------------

#[test]
fn merge_yields_exact_union_when_contiguous() {
    check(
        "merge_yields_exact_union_when_contiguous",
        |g| {
            (
                g.u64_in(0, PAGE_SIZE),
                g.u64_in(1, PAGE_SIZE),
                g.u64_in(0, PAGE_SIZE),
                g.u64_in(1, PAGE_SIZE),
            )
        },
        |&(a_start, a_len, b_start, b_len)| {
            // Shrinking may drive a length to 0 or a range past the page;
            // re-check the generator's preconditions as assumptions.
            prop_assume!(a_len >= 1 && b_len >= 1);
            prop_assume!(a_start + a_len <= PAGE_SIZE);
            prop_assume!(b_start + b_len <= PAGE_SIZE);
            let req = NfsPageReq::new(0, a_start, a_len, SimTime::ZERO);
            let touching = b_start <= a_start + a_len && a_start <= b_start + b_len;
            let merged = req.merge(b_start, b_len);
            prop_assert_eq!(merged, touching);
            if merged {
                prop_assert_eq!(req.offset_in_page(), a_start.min(b_start));
                let end = (a_start + a_len).max(b_start + b_len);
                prop_assert_eq!(req.len(), end - req.offset_in_page());
            } else {
                prop_assert_eq!(req.offset_in_page(), a_start);
                prop_assert_eq!(req.len(), a_len);
            }
            CaseOutcome::Pass
        },
    );
}

// ---------------------------------------------------------------------
// RFC 1831 §10 record marking (the TCP transport's framing layer).
// ---------------------------------------------------------------------

#[test]
fn record_round_trips_at_arbitrary_fragment_boundaries() {
    check(
        "record_round_trips_at_arbitrary_fragment_boundaries",
        |g| {
            (
                g.bytes(0, 2048),
                g.usize_in(1, 512),
                // Sizes of the stream chunks the reader is fed, modelling
                // arbitrary TCP segmentation of the byte stream.
                g.vec(1, 64, |g| g.usize_in(1, 128)),
            )
        },
        |(msg, max_frag, chunks)| {
            prop_assume!(*max_frag >= 1);
            prop_assume!(chunks.iter().all(|&c| c >= 1));
            let wire = encode_record_frags(msg, *max_frag);
            let mut rd = RecordReader::new();
            let mut out = Vec::new();
            let mut off = 0;
            let mut chunk = chunks.iter().cycle();
            while off < wire.len() {
                let take = (*chunk.next().unwrap()).min(wire.len() - off);
                rd.push(&wire[off..off + take]);
                off += take;
                while let Some(r) = rd.next_record() {
                    out.push(r);
                }
            }
            prop_assert_eq!(out.len(), 1);
            prop_assert_eq!(&out[0], msg);
            prop_assert_eq!(rd.buffered(), 0);
            CaseOutcome::Pass
        },
    );
}

#[test]
fn back_to_back_records_survive_mixed_fragmentation() {
    check(
        "back_to_back_records_survive_mixed_fragmentation",
        |g| {
            g.vec(1, 8, |g| {
                let msg = g.bytes(0, 512);
                let frag = g.usize_in(1, 96);
                (msg, frag)
            })
        },
        |records| {
            prop_assume!(records.iter().all(|(_, f)| *f >= 1));
            let mut wire = Vec::new();
            for (msg, frag) in records {
                wire.extend(encode_record_frags(msg, *frag));
            }
            let mut rd = RecordReader::new();
            rd.push(&wire);
            for (msg, _) in records {
                prop_assert_eq!(&rd.next_record().expect("record"), msg);
            }
            prop_assert_eq!(rd.next_record(), None);
            prop_assert_eq!(rd.buffered(), 0);
            CaseOutcome::Pass
        },
    );
}

#[test]
fn single_fragment_encoding_matches_the_general_encoder() {
    check(
        "single_fragment_encoding_matches_the_general_encoder",
        |g| g.bytes(0, 1024),
        |msg| {
            // One maximal fragment: 4-byte header with the top bit set and
            // the length in the low 31 bits, then the message verbatim.
            let wire = encode_record(msg);
            prop_assert_eq!(wire.len(), msg.len() + 4);
            let header = u32::from_be_bytes(wire[0..4].try_into().unwrap());
            prop_assert_eq!(header, 0x8000_0000 | msg.len() as u32);
            prop_assert_eq!(&wire[4..], &msg[..]);
            CaseOutcome::Pass
        },
    );
}

// ---------------------------------------------------------------------
// Timer wheel vs the reference heap model.
// ---------------------------------------------------------------------

/// The executor's timer wheel must fire in exactly the order the old
/// `BinaryHeap<Reverse<(deadline, seq)>>` did — smallest deadline first,
/// ties by registration sequence — across interleaved pushes and pops at
/// wildly mixed time scales.
#[test]
fn timer_wheel_matches_reference_heap_order() {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    use nfsperf_sim::wheel::TimerWheel;

    // Each op: (kind, raw). kind 0 = pop; 1..4 = push with a delay whose
    // magnitude is `raw` shifted down by a generated amount, so delays
    // span from nanoseconds to most of the u64 clock and exercise every
    // wheel level (including cascades).
    check(
        "timer_wheel_matches_reference_heap_order",
        |g| {
            g.vec(0, 300, |g| {
                (g.u8_in(0, 4), g.any_u64() >> g.u32_in(0, 64))
            })
        },
        |ops: &Vec<(u8, u64)>| {
            let mut wheel: TimerWheel<u64> = TimerWheel::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for &(kind, raw) in ops {
                if kind == 0 {
                    // Pop from both; they must agree, including on empty.
                    match (wheel.pop(), heap.pop()) {
                        (None, None) => {}
                        (Some(e), Some(Reverse((deadline, s)))) => {
                            prop_assert_eq!((e.deadline, e.seq), (deadline, s));
                            prop_assert_eq!(e.payload, s);
                            now = deadline;
                        }
                        (w, h) => {
                            prop_assert!(
                                false,
                                "emptiness disagrees: wheel {:?} heap {:?}",
                                w.map(|e| (e.deadline, e.seq)),
                                h
                            );
                        }
                    }
                } else {
                    // New deadlines are strictly after `now`, as in the
                    // executor (sleeps have positive duration).
                    let deadline = now.saturating_add(1).saturating_add(raw);
                    wheel.push(deadline, seq, seq);
                    heap.push(Reverse((deadline, seq)));
                    seq += 1;
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            // Drain the rest; full order must match.
            while let Some(Reverse((deadline, s))) = heap.pop() {
                let e = wheel.pop().expect("wheel ran dry before the heap");
                prop_assert_eq!((e.deadline, e.seq), (deadline, s));
            }
            prop_assert!(wheel.pop().is_none());
            prop_assert!(wheel.is_empty());
            CaseOutcome::Pass
        },
    );
}
