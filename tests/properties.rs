//! Property-based tests over the core data structures and codecs.

use proptest::prelude::*;

use nfsperf_client::{IndexKind, NfsPageReq, RequestIndex};
use nfsperf_kernel::{split_into_pages, PAGE_SIZE};
use nfsperf_net::{fragments_for, wire_bytes};
use nfsperf_nfs3::{
    Commit3Args, Fattr3, FileHandle, NfsStat3, StableHow, WccData, Write3Args, Write3Res, WriteVerf,
};
use nfsperf_sim::{Histogram, SimDuration, SimTime};
use nfsperf_sunrpc::{decode_call, decode_reply, encode_call, encode_reply, AuthUnix};
use nfsperf_xdr::{Decoder, Encoder, XdrDecode, XdrEncode};

// ---------------------------------------------------------------------
// XDR codec round trips.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn xdr_u32_round_trip(v in any::<u32>()) {
        let mut e = Encoder::new();
        e.put_u32(v);
        let bytes = e.into_bytes();
        prop_assert_eq!(bytes.len(), 4);
        prop_assert_eq!(Decoder::new(&bytes).get_u32().unwrap(), v);
    }

    #[test]
    fn xdr_u64_round_trip(v in any::<u64>()) {
        let mut e = Encoder::new();
        e.put_u64(v);
        let bytes = e.into_bytes();
        prop_assert_eq!(Decoder::new(&bytes).get_u64().unwrap(), v);
    }

    #[test]
    fn xdr_opaque_round_trip(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut e = Encoder::new();
        e.put_opaque(&data);
        let bytes = e.into_bytes();
        // Always 4-byte aligned.
        prop_assert_eq!(bytes.len() % 4, 0);
        let mut d = Decoder::new(&bytes);
        prop_assert_eq!(d.get_opaque().unwrap(), &data[..]);
        prop_assert!(d.is_empty());
    }

    #[test]
    fn xdr_string_round_trip(s in "\\PC{0,256}") {
        let mut e = Encoder::new();
        e.put_string(&s);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        prop_assert_eq!(d.get_string().unwrap(), s);
    }

    #[test]
    fn xdr_mixed_sequence_round_trip(
        ints in proptest::collection::vec(any::<u32>(), 1..20),
        blob in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut e = Encoder::new();
        for &v in &ints {
            e.put_u32(v);
        }
        e.put_opaque(&blob);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        for &v in &ints {
            prop_assert_eq!(d.get_u32().unwrap(), v);
        }
        prop_assert_eq!(d.get_opaque().unwrap(), &blob[..]);
    }

    /// A decoder never panics on arbitrary junk — it returns errors.
    #[test]
    fn xdr_decoder_is_panic_free(junk in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut d = Decoder::new(&junk);
        let _ = d.get_u32();
        let _ = d.get_opaque();
        let _ = d.get_string();
        let _ = d.get_u64();
    }
}

// ---------------------------------------------------------------------
// NFSv3 message round trips.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn write3_args_round_trip(
        fileid in any::<u64>(),
        offset in 0u64..1 << 40,
        count in 0u32..65536,
        stable_pick in 0u8..3,
    ) {
        let stable = match stable_pick {
            0 => StableHow::Unstable,
            1 => StableHow::DataSync,
            _ => StableHow::FileSync,
        };
        let args = Write3Args::new(FileHandle::for_fileid(fileid), offset, count, stable);
        let mut e = Encoder::new();
        args.encode(&mut e);
        prop_assert_eq!(e.len(), args.encoded_len());
        let bytes = e.into_bytes();
        let back = Write3Args::decode(&mut Decoder::new(&bytes)).unwrap();
        prop_assert_eq!(back, args);
    }

    #[test]
    fn write3_res_round_trip(
        count in any::<u32>(),
        verf in any::<u64>(),
        size in any::<u64>(),
    ) {
        let res = Write3Res::ok(
            WccData::full(size / 2, Fattr3::regular(3, size)),
            count,
            StableHow::FileSync,
            WriteVerf(verf),
        );
        let mut e = Encoder::new();
        res.encode(&mut e);
        let bytes = e.into_bytes();
        let back = Write3Res::decode(&mut Decoder::new(&bytes)).unwrap();
        prop_assert_eq!(back, res);
    }

    #[test]
    fn rpc_call_header_round_trip(
        xid in any::<u32>(),
        proc in 0u32..22,
        uid in any::<u32>(),
        machine in "[a-z]{1,32}",
    ) {
        let cred = AuthUnix {
            stamp: 1,
            machine,
            uid,
            gid: uid / 2,
            gids: vec![1, 2],
        };
        let args = Commit3Args {
            file: FileHandle::for_fileid(u64::from(xid)),
            offset: 0,
            count: 0,
        };
        let msg = encode_call(xid, 100_003, 3, proc, &cred, &args);
        let (hdr, mut dec) = decode_call(&msg).unwrap();
        prop_assert_eq!(hdr.xid, xid);
        prop_assert_eq!(hdr.proc, proc);
        prop_assert_eq!(&hdr.cred, &cred);
        let back = Commit3Args::decode(&mut dec).unwrap();
        prop_assert_eq!(back, args);
    }

    #[test]
    fn rpc_reply_round_trip(xid in any::<u32>(), status_pick in 0u8..4) {
        let status = match status_pick {
            0 => NfsStat3::Ok,
            1 => NfsStat3::Io,
            2 => NfsStat3::Nospc,
            _ => NfsStat3::Stale,
        };
        let msg = encode_reply(xid, &(status as u32));
        let (hdr, mut dec) = decode_reply(&msg).unwrap();
        prop_assert_eq!(hdr.xid, xid);
        prop_assert_eq!(dec.get_u32().unwrap(), status as u32);
    }
}

// ---------------------------------------------------------------------
// Page splitting.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn page_split_covers_exactly(offset in 0u64..1 << 30, len in 0u64..256 * 1024) {
        let segs = split_into_pages(offset, len);
        // Total coverage.
        let total: u64 = segs.iter().map(|s| s.len).sum();
        prop_assert_eq!(total, len);
        // Contiguous, ordered, within page bounds.
        let mut pos = offset;
        for s in &segs {
            prop_assert_eq!(s.file_offset(), pos);
            prop_assert!(s.len >= 1 && s.len <= PAGE_SIZE);
            prop_assert!(s.offset_in_page + s.len <= PAGE_SIZE);
            pos += s.len;
        }
        // No two segments share a page.
        for w in segs.windows(2) {
            prop_assert!(w[0].index < w[1].index);
        }
    }
}

// ---------------------------------------------------------------------
// Fragmentation arithmetic.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn fragments_monotone_in_payload(a in 0usize..65536, b in 0usize..65536) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(fragments_for(lo, 1500) <= fragments_for(hi, 1500));
        prop_assert!(wire_bytes(lo, 1500) <= wire_bytes(hi, 1500));
    }

    #[test]
    fn bigger_mtu_never_fragments_more(payload in 0usize..65536) {
        prop_assert!(fragments_for(payload, 9000) <= fragments_for(payload, 1500));
        prop_assert!(wire_bytes(payload, 9000) <= wire_bytes(payload, 1500));
    }

    #[test]
    fn wire_overhead_is_bounded(payload in 0usize..65536) {
        let w = wire_bytes(payload, 1500);
        prop_assert!(w > payload);
        // Overhead: <= 66 bytes per fragment plus the UDP header.
        let frags = fragments_for(payload, 1500);
        prop_assert!(w <= payload + 8 + frags * 58);
    }
}

// ---------------------------------------------------------------------
// Request index: the list and the hash agree on all operations.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn index_kinds_are_observationally_equal(
        ops in proptest::collection::vec((any::<bool>(), 0u64..64), 1..200)
    ) {
        let mut list = RequestIndex::new(IndexKind::SortedList);
        let mut hash = RequestIndex::new(IndexKind::HashTable);
        for (insert, page) in ops {
            if insert {
                let in_list = list.find(page).found.is_some();
                let in_hash = hash.find(page).found.is_some();
                prop_assert_eq!(in_list, in_hash);
                if !in_list {
                    list.insert(NfsPageReq::new(page, 0, PAGE_SIZE, SimTime::ZERO));
                    hash.insert(NfsPageReq::new(page, 0, PAGE_SIZE, SimTime::ZERO));
                }
            } else {
                let a = list.remove(page).map(|r| r.page_index);
                let b = hash.remove(page).map(|r| r.page_index);
                prop_assert_eq!(a, b);
            }
            prop_assert_eq!(list.len(), hash.len());
        }
        // Same final contents in the same order.
        let pa: Vec<u64> = list.iter().map(|r| r.page_index).collect();
        let pb: Vec<u64> = hash.iter().map(|r| r.page_index).collect();
        prop_assert_eq!(pa.clone(), pb);
        // Sorted invariant.
        let mut sorted = pa.clone();
        sorted.sort_unstable();
        prop_assert_eq!(pa, sorted);
    }
}

// ---------------------------------------------------------------------
// Histogram invariants.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn histogram_conserves_samples(
        samples in proptest::collection::vec(0u64..10_000_000, 0..300)
    ) {
        let durs: Vec<SimDuration> = samples.iter().map(|&n| SimDuration(n)).collect();
        let h = Histogram::from_samples(SimDuration::from_micros(60), 8, &durs);
        let binned: u64 = h.bins().iter().sum::<u64>() + h.overflow();
        prop_assert_eq!(binned, samples.len() as u64);
        prop_assert_eq!(h.count(), samples.len() as u64);
        if let Some(&max) = samples.iter().max() {
            prop_assert_eq!(h.max(), SimDuration(max));
        }
        if let Some(&min) = samples.iter().min() {
            prop_assert_eq!(h.min(), Some(SimDuration(min)));
        }
        // Mean is bounded by min and max.
        if !samples.is_empty() {
            prop_assert!(h.mean() >= h.min().unwrap());
            prop_assert!(h.mean() <= h.max());
        }
    }
}

// ---------------------------------------------------------------------
// Request merge semantics.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn merge_yields_exact_union_when_contiguous(
        a_start in 0u64..PAGE_SIZE, a_len in 1u64..PAGE_SIZE,
        b_start in 0u64..PAGE_SIZE, b_len in 1u64..PAGE_SIZE,
    ) {
        prop_assume!(a_start + a_len <= PAGE_SIZE);
        prop_assume!(b_start + b_len <= PAGE_SIZE);
        let req = NfsPageReq::new(0, a_start, a_len, SimTime::ZERO);
        let touching = b_start <= a_start + a_len && a_start <= b_start + b_len;
        let merged = req.merge(b_start, b_len);
        prop_assert_eq!(merged, touching);
        if merged {
            prop_assert_eq!(req.offset_in_page(), a_start.min(b_start));
            let end = (a_start + a_len).max(b_start + b_len);
            prop_assert_eq!(req.len(), end - req.offset_in_page());
        } else {
            prop_assert_eq!(req.offset_in_page(), a_start);
            prop_assert_eq!(req.len(), a_len);
        }
    }
}
