//! Transport ablation acceptance: UDP vs TCP mounts under packet loss.
//!
//! On the paper's clean gigabit link the transport choice is a wash —
//! both mounts pay the same CPU costs and the same BKL walks, so they
//! land within a rounding error of each other. Under loss they diverge
//! sharply: UDP stalls a whole RPC per lost fragment until the 700 ms
//! retransmit timer fires, while TCP recovers lost segments in about an
//! RTT via duplicate ACKs.

use nfsperf_client::ClientTuning;
use nfsperf_experiments::{run_bonnie, transport_sweep, Scenario, ServerKind};
use nfsperf_sunrpc::Transport;

const FILE_SIZE: u64 = 4 << 20;

fn scenario(transport: Transport, loss: f64) -> Scenario {
    let mut s = Scenario::new(ClientTuning::full_patch(), ServerKind::Filer)
        .with_transport(transport)
        .with_loss(loss);
    s.record_latencies = false;
    s
}

#[test]
fn transports_tie_on_a_clean_link() {
    let udp = run_bonnie(&scenario(Transport::Udp, 0.0), FILE_SIZE);
    let tcp = run_bonnie(&scenario(Transport::Tcp, 0.0), FILE_SIZE);
    let u = udp.report.flush_mbps();
    let t = tcp.report.flush_mbps();
    assert!(
        (u - t).abs() / u <= 0.15,
        "clean-link transports should be within 15%: udp {u:.1} MB/s, tcp {t:.1} MB/s"
    );
    assert_eq!(udp.xprt_stats.retransmits, 0);
    assert_eq!(tcp.xprt_stats.retransmits, 0);
    assert_eq!(tcp.tcp_stats.unwrap().retransmits, 0);
}

#[test]
fn tcp_beats_udp_at_one_percent_loss() {
    let udp = run_bonnie(&scenario(Transport::Udp, 0.01), FILE_SIZE);
    let tcp = run_bonnie(&scenario(Transport::Tcp, 0.01), FILE_SIZE);
    let u = udp.report.flush_mbps();
    let t = tcp.report.flush_mbps();
    assert!(
        t > u,
        "TCP should beat UDP at 1% loss: udp {u:.1} MB/s, tcp {t:.1} MB/s"
    );
    // And the recovery mechanisms are what they should be: UDP burned
    // RPC-timer retransmissions, TCP recovered below the RPC layer.
    assert!(udp.xprt_stats.retransmits > 0, "udp never hit its timer");
    assert_eq!(tcp.xprt_stats.retransmits, 0, "tcp replayed a connection");
    assert!(tcp.tcp_stats.unwrap().retransmits > 0);
}

#[test]
fn tcp_beats_udp_at_five_percent_loss() {
    let udp = run_bonnie(&scenario(Transport::Udp, 0.05), FILE_SIZE);
    let tcp = run_bonnie(&scenario(Transport::Tcp, 0.05), FILE_SIZE);
    let u = udp.report.flush_mbps();
    let t = tcp.report.flush_mbps();
    assert!(
        t > u,
        "TCP should beat UDP at 5% loss: udp {u:.1} MB/s, tcp {t:.1} MB/s"
    );
}

/// The committed-seed determinism half of the transport work: the whole
/// lossy TCP sweep — drops, retransmissions, throughput — is a pure
/// function of the scenario, bit-identical across runs.
#[test]
fn tcp_loss_sweep_is_bit_identical_across_runs() {
    // Serial vs parallel: rows must not depend on --jobs either.
    let a = transport_sweep(1 << 20, &[0.01, 0.05], 1);
    let b = transport_sweep(1 << 20, &[0.01, 0.05], 4);
    assert_eq!(a.rows.len(), b.rows.len());
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.label, rb.label);
        assert_eq!(ra.loss.to_bits(), rb.loss.to_bits());
        assert_eq!(
            ra.write_mbps.to_bits(),
            rb.write_mbps.to_bits(),
            "{} at {}: write throughput differs",
            ra.label,
            ra.loss
        );
        assert_eq!(
            ra.flush_mbps.to_bits(),
            rb.flush_mbps.to_bits(),
            "{} at {}: flush throughput differs",
            ra.label,
            ra.loss
        );
        assert_eq!(ra.rpc_retransmits, rb.rpc_retransmits);
        assert_eq!(ra.drops, rb.drops);
        assert_eq!(ra.tcp_retransmits, rb.tcp_retransmits);
        assert_eq!(ra.tcp_fast_retransmits, rb.tcp_fast_retransmits);
    }
}
