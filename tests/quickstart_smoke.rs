//! Smoke test guarding the end-to-end write path every figure runner
//! shares: the same world `examples/quickstart.rs` builds (client kernel,
//! gigabit NICs, filer server, fully patched mount) must run to
//! completion and produce non-zero throughput. `scripts/verify.sh`
//! additionally runs the example binary itself and checks its output.

use std::rc::Rc;

use nfsperf_client::{ClientTuning, MountConfig, NfsMount};
use nfsperf_kernel::{Kernel, KernelConfig};
use nfsperf_net::{Nic, NicSpec, Path};
use nfsperf_server::{NfsServer, ServerConfig};
use nfsperf_sim::Sim;

#[test]
fn quickstart_world_completes_with_nonzero_throughput() {
    let sim = Sim::new();

    let kernel = Kernel::new(&sim, KernelConfig::default());
    let (client_nic, client_rx) = Nic::new(&sim, "client", NicSpec::gigabit());
    let (server_nic, server_rx) = Nic::new(&sim, "server", NicSpec::gigabit());
    let to_server = Path::new(Rc::clone(&client_nic), server_nic, Path::default_latency());

    let server = NfsServer::spawn(
        &sim,
        server_rx,
        to_server.reversed(),
        ServerConfig::netapp_f85(),
    );

    let mount = NfsMount::mount(
        &kernel,
        to_server,
        client_rx,
        MountConfig {
            tuning: ClientTuning::full_patch(),
            ..MountConfig::default()
        },
    );

    let mount2 = Rc::clone(&mount);
    let sim2 = sim.clone();
    let report = sim.run_until(async move {
        let file = mount2.create("quickstart.dat").await.expect("create");
        nfsperf_bonnie::run(&sim2, &file, &nfsperf_bonnie::BonnieConfig::new(4 << 20)).await
    });

    assert_eq!(report.file_size, 4 << 20, "must write the whole file");
    assert!(
        report.write_mbps() > 0.0,
        "write throughput must be non-zero, got {}",
        report.write_mbps()
    );
    assert!(report.flush_mbps() > 0.0, "flush throughput must be non-zero");
    assert!(report.close_mbps() > 0.0, "close throughput must be non-zero");

    let xprt = mount.xprt().stats();
    assert!(xprt.calls > 0, "the mount must have issued RPCs");
    assert_eq!(xprt.replies, xprt.calls, "every call must be answered");

    let srv = server.stats();
    assert!(srv.writes > 0, "the server must have seen WRITEs");
    assert_eq!(
        srv.write_bytes,
        4 << 20,
        "every byte must reach the server"
    );
}
