//! End-to-end shape tests: every qualitative claim of the paper's
//! evaluation, asserted against the full simulated stack.
//!
//! These use reduced file sizes so that debug-mode `cargo test` stays
//! fast; the `examples/` binaries run paper-scale parameters.

use nfsperf_client::ClientTuning;
use nfsperf_experiments::{figures, run_bonnie, run_local, Scenario, ServerKind};
use nfsperf_sim::SimDuration;

/// Figure 1 claim: with the stock client, local writes run at memory
/// speed while NFS writes are pinned to network/server speed.
#[test]
fn fig1_stock_nfs_is_network_bound_local_is_memory_bound() {
    let size = 20 << 20;
    let local = run_local(size, false).write_mbps();
    let nfs = run_bonnie(
        &Scenario::new(ClientTuning::linux_2_4_4(), ServerKind::Filer),
        size,
    )
    .report
    .write_mbps();
    assert!(
        local > 150.0,
        "local ext2 should top 150 MB/s, got {local:.1}"
    );
    assert!(nfs < 60.0, "stock NFS should be server-bound, got {nfs:.1}");
    assert!(local / nfs > 3.0, "the paper's >3x gap must appear");
}

/// Figure 2 claims: periodic spikes every ~80-100 calls, ~19 ms each, a
/// small percentage of calls, inflating the mean several-fold.
#[test]
fn fig2_stock_client_latency_spikes() {
    let out = run_bonnie(
        &Scenario::new(ClientTuning::linux_2_4_4(), ServerKind::Filer),
        10 << 20,
    );
    let ms1 = SimDuration::from_millis(1);
    let lat = &out.report.latencies;
    let spikes: Vec<usize> = lat
        .iter()
        .enumerate()
        .filter(|(_, l)| **l > ms1)
        .map(|(i, _)| i)
        .collect();
    assert!(
        spikes.len() >= 5,
        "expected many spikes, got {}",
        spikes.len()
    );
    // Periodicity: spikes are regularly spaced (soft limit / 2 pages).
    let periods: Vec<usize> = spikes.windows(2).map(|w| w[1] - w[0]).collect();
    let mean_period = periods.iter().sum::<usize>() as f64 / periods.len() as f64;
    assert!(
        (60.0..=140.0).contains(&mean_period),
        "spike period should be ~96 calls, got {mean_period:.0}"
    );
    // Magnitude: median spike in the many-millisecond range.
    let mut sizes: Vec<SimDuration> = lat.iter().filter(|l| **l > ms1).copied().collect();
    sizes.sort();
    let median = sizes[sizes.len() / 2];
    assert!(
        median >= SimDuration::from_millis(5) && median <= SimDuration::from_millis(60),
        "median spike should be ~19 ms, got {median}"
    );
    // The mean is inflated several-fold by a small minority of calls.
    let mean = out.report.mean_latency();
    let excl = out.report.mean_latency_excluding(ms1);
    assert!(
        mean.as_nanos() > excl.as_nanos() * 3,
        "spikes should inflate the mean >3x: {mean} vs {excl}"
    );
    assert!(spikes.len() * 20 < lat.len(), "spikes are a small minority");
}

/// Figure 2 side-claim: the latency spikes do not appear on the wire —
/// WRITE RPCs keep flowing while the writer stalls.
#[test]
fn fig2_spikes_are_client_side_only() {
    let out = run_bonnie(
        &Scenario::new(ClientTuning::linux_2_4_4(), ServerKind::Filer),
        10 << 20,
    );
    // Every byte written reached the server as ordinary WRITEs.
    assert_eq!(out.server_stats.write_bytes, 10 << 20);
    assert!(out.xprt_stats.retransmits == 0, "no wire anomalies");
}

/// Figure 3 claims: removing the flush logic kills the spikes but
/// latency grows as the request list lengthens.
#[test]
fn fig3_no_flush_growth() {
    let out = run_bonnie(
        &Scenario::new(ClientTuning::no_flush(), ServerKind::Filer),
        20 << 20,
    );
    assert_eq!(out.mount_stats.soft_limit_flushes, 0);
    assert_eq!(
        out.report.spikes(SimDuration::from_millis(5)),
        0,
        "no flush spikes"
    );
    let ratio = nfsperf_bonnie::trend_ratio(&out.report.latencies);
    assert!(
        ratio > 1.3,
        "latency should grow over the run, ratio {ratio:.2}"
    );
    // And the profiler blames the list scans, as the paper's §3.4 found.
    let scans = out
        .profile
        .iter()
        .filter(|r| {
            r.label == "nfs_find_request"
                || r.label == "nfs_update_request"
                || r.label == "nfs_scan_list"
        })
        .map(|r| r.time.as_nanos())
        .sum::<u64>();
    let copies = out
        .profile
        .iter()
        .find(|r| r.label == "generic_file_write")
        .map(|r| r.time.as_nanos())
        .unwrap_or(0);
    assert!(
        scans > copies,
        "index walks should out-cost data copies: {scans} vs {copies}"
    );
}

/// Figure 4 claims: the hash table keeps latency flat at roughly the
/// spike-free baseline, and memory write throughput approaches the
/// paper's ~115 MB/s.
#[test]
fn fig4_hash_table_flat_and_fast() {
    let out = run_bonnie(
        &Scenario::new(ClientTuning::hash_table(), ServerKind::Filer),
        20 << 20,
    );
    let ratio = nfsperf_bonnie::trend_ratio(&out.report.latencies);
    assert!(
        ratio < 1.3,
        "hash table must keep latency flat, ratio {ratio:.2}"
    );
    let mbps = out.report.write_mbps();
    assert!(
        (70.0..=170.0).contains(&mbps),
        "memory write throughput should be ~100-130 MB/s, got {mbps:.1}"
    );
}

/// Figures 5/6 claims: with the BKL held the faster server produces
/// *slower and jitterier* client writes; releasing the lock around
/// sock_sendmsg shrinks mean and max while the minimum barely moves.
#[test]
fn fig5_fig6_lock_contention_shapes() {
    let size = 10 << 20;
    let held_filer = run_bonnie(
        &Scenario::new(ClientTuning::hash_table(), ServerKind::Filer),
        size,
    );
    let held_knfsd = run_bonnie(
        &Scenario::new(ClientTuning::hash_table(), ServerKind::Knfsd),
        size,
    );
    let free_filer = run_bonnie(
        &Scenario::new(ClientTuning::full_patch(), ServerKind::Filer),
        size,
    );
    let mean = |o: &nfsperf_experiments::RunOutput| nfsperf_bonnie::mean(&o.report.latencies[1..]);
    let min =
        |o: &nfsperf_experiments::RunOutput| o.report.latencies[1..].iter().copied().min().unwrap();

    // Fig 5: faster server -> slower client memory writes.
    assert!(
        mean(&held_filer) > mean(&held_knfsd),
        "filer run should have higher mean latency: {} vs {}",
        mean(&held_filer),
        mean(&held_knfsd)
    );
    // Fig 6: the lock fix reduces mean latency against the filer.
    assert!(
        mean(&free_filer) < mean(&held_filer),
        "lock release should cut mean latency: {} vs {}",
        mean(&free_filer),
        mean(&held_filer)
    );
    // Minimum latency barely changes: the variation was lock waiting,
    // not code path length.
    let (a, b) = (
        min(&held_filer).as_nanos() as f64,
        min(&free_filer).as_nanos() as f64,
    );
    assert!(
        (a - b).abs() / a < 0.25,
        "minimum latency should be roughly unchanged: {a}ns vs {b}ns"
    );
}

/// Table 1 claims: both rows improve with the lock fix; under the stock
/// lock the slower server wins; after the fix the gap narrows.
#[test]
fn table1_shape() {
    let t = figures::table1();
    assert!(
        t.filer_no_lock > t.filer_normal,
        "filer row improves: {t:?}"
    );
    assert!(
        t.linux_no_lock > t.linux_normal,
        "linux row improves: {t:?}"
    );
    assert!(
        t.linux_normal > t.filer_normal,
        "BKL held: slower server allows faster writes: {t:?}"
    );
    let gap_before = t.linux_normal - t.filer_normal;
    let gap_after = (t.linux_no_lock - t.filer_no_lock).abs();
    assert!(
        gap_after < gap_before,
        "the lock fix should bring the servers into the same ballpark: {t:?}"
    );
    // Rough magnitude: the filer improvement is the larger one (paper:
    // +22% vs +7%).
    let filer_gain = t.filer_no_lock / t.filer_normal;
    let linux_gain = t.linux_no_lock / t.linux_normal;
    assert!(
        filer_gain > linux_gain,
        "lock removal helps the fast-server case more: {t:?}"
    );
}

/// §3.5 claims: sock_sendmsg accounts for ~90% of writer lock waits, and
/// a 100 Mb/s server allows the fastest memory writes of all.
#[test]
fn slow_server_inversion_and_sendmsg_blame() {
    let cmp = figures::slow_server_comparison();
    assert!(
        cmp.slow_mbps > cmp.knfsd_mbps && cmp.knfsd_mbps > cmp.filer_mbps,
        "throughput must invert with server speed: filer {:.1} / linux {:.1} / slow {:.1}",
        cmp.filer_mbps,
        cmp.knfsd_mbps,
        cmp.slow_mbps
    );
    assert!(
        cmp.xmit_wait_fraction > 0.6,
        "sendmsg should dominate lock waits (paper ~90%), got {:.0}%",
        100.0 * cmp.xmit_wait_fraction
    );
}

/// Figure 7 claims: the patched client writes at memory speed while RAM
/// lasts; past RAM the filer sustains more than the Linux server, which
/// sustains more than the local IDE disk.
#[test]
fn fig7_patched_shapes() {
    // In-RAM point.
    let filer_small = run_bonnie(
        &Scenario::new(ClientTuning::full_patch(), ServerKind::Filer),
        20 << 20,
    )
    .report
    .write_mbps();
    assert!(
        filer_small > 80.0,
        "in-RAM NFS should be memory speed, got {filer_small:.1}"
    );

    // Past-RAM point on a scaled-down machine (64 MB RAM, 96 MB file):
    // the same mechanism as the paper's 256 MB / 280 MB point at a
    // fraction of the event count, so debug-mode tests stay fast. The
    // release-mode benches and `examples/figure7` run the full scale.
    let ram = 64 << 20;
    let size = 96 << 20;
    let local = nfsperf_experiments::run_local_with_ram(size, ram, false).write_mbps();
    let filer = {
        let mut s = Scenario::new(ClientTuning::full_patch(), ServerKind::Filer);
        s.ram_bytes = ram;
        s.record_latencies = false;
        run_bonnie(&s, size).report.write_mbps()
    };
    let knfsd = {
        let mut s = Scenario::new(ClientTuning::full_patch(), ServerKind::Knfsd);
        s.ram_bytes = ram;
        s.record_latencies = false;
        run_bonnie(&s, size).report.write_mbps()
    };
    // The paper: local and Linux-server throughput "immediately trail
    // off" past RAM while the filer "sustains high data throughput
    // longer" (NVRAM as page-cache extension).
    assert!(
        filer > 2.0 * local && filer > 2.0 * knfsd,
        "past RAM the filer must sustain: filer {filer:.1} vs linux {knfsd:.1} / local {local:.1}"
    );
    assert!(
        local < 80.0 && knfsd < 80.0,
        "local and linux must have trailed off: linux {knfsd:.1}, local {local:.1}"
    );
}

/// The enhancement story end to end: full patch vs stock client on the
/// same workload improves memory write throughput by more than 3x (the
/// abstract's headline).
#[test]
fn headline_improvement_exceeds_3x() {
    let size = 20 << 20;
    let stock = run_bonnie(
        &Scenario::new(ClientTuning::linux_2_4_4(), ServerKind::Filer),
        size,
    )
    .report
    .write_mbps();
    let patched = run_bonnie(
        &Scenario::new(ClientTuning::full_patch(), ServerKind::Filer),
        size,
    )
    .report
    .write_mbps();
    assert!(
        patched / stock > 3.0,
        "memory write throughput should improve >3x: {stock:.1} -> {patched:.1}"
    );
}

/// Figure 2's wire observation, checked with the NIC's departure log:
/// while the writer suffers ~19 ms stalls, WRITE datagrams keep leaving
/// the client with much smaller gaps — the spikes are a client-side
/// artifact, invisible to a packet capture.
#[test]
fn fig2_wire_stays_smooth_through_spikes() {
    let out = run_bonnie(
        &Scenario::new(ClientTuning::linux_2_4_4(), ServerKind::Filer),
        10 << 20,
    );
    let max_spike = *out.report.latencies.iter().max().unwrap();
    let max_gap = out.max_wire_gap.expect("WRITEs were sent");
    // Wire silence is bounded by the write-behind daemon's cadence (~10
    // ms), not by the writer's stalls: the spikes are strictly larger
    // than anything a packet capture would show.
    assert!(
        max_gap < max_spike,
        "wire gaps ({max_gap}) must be smaller than writer spikes ({max_spike})"
    );
    assert!(
        max_gap <= SimDuration::from_millis(12),
        "wire gaps are bounded by the flushd interval, got {max_gap}"
    );
}
