//! QoS regression: one hog must not starve the well-behaved clients.
//!
//! The unfair workload — a gigabit hog with a 64-deep slot table and
//! periodic COMMIT backlog against seven patched 100bT victims — is the
//! world `results/qos.csv` publishes. These tests pin both halves of
//! that exhibit: under FIFO the hog collapses victim throughput and
//! blows up their server-side tail; under classed DRR the victims get a
//! fair share back and their p99 stays within 2x of the hog-free
//! baseline.

use nfsperf_experiments::{qos_sweep, run_qos, QosConfig, ServerKind};
use nfsperf_server::SchedPolicy;

/// The published cell: netapp-filer, 7 victims, 2 MB each.
fn sweep_cells() -> (
    nfsperf_experiments::QosCell,
    nfsperf_experiments::QosCell,
    nfsperf_experiments::QosCell,
) {
    let scheds = [
        SchedPolicy::Fifo,
        SchedPolicy::drr(),
        SchedPolicy::classed_drr(),
    ];
    let sweep = qos_sweep(&[ServerKind::Filer], &scheds, 7, 2 << 20, 1);
    let mut rows = sweep.rows.into_iter();
    let fifo = rows.next().expect("fifo row");
    let drr = rows.next().expect("drr row");
    let classed = rows.next().expect("classed-drr row");
    (fifo, drr, classed)
}

#[test]
fn fifo_lets_the_hog_starve_victims() {
    let (fifo, _, classed) = sweep_cells();
    assert!(
        fifo.jain_all < 0.6,
        "FIFO should let the hog take an outsized share: jain = {:.3}",
        fifo.jain_all
    );
    assert!(
        fifo.hog_mbps > 2.0 * fifo.victim_mean_mbps,
        "the hog should outrun every victim under FIFO: hog {:.2} vs victim {:.2} MB/s",
        fifo.hog_mbps,
        fifo.victim_mean_mbps
    );
    assert!(
        fifo.p99_ratio > 2.0,
        "FIFO should inflate the victim tail well past the hog-free baseline: {:.2}x",
        fifo.p99_ratio
    );
    assert!(
        fifo.victim_mean_mbps < 0.75 * classed.victim_mean_mbps,
        "FIFO victims ({:.2} MB/s) should be visibly starved relative to \
         classed DRR ({:.2} MB/s)",
        fifo.victim_mean_mbps,
        classed.victim_mean_mbps
    );
}

#[test]
fn classed_drr_restores_fairness_and_tail() {
    let (_, drr, classed) = sweep_cells();
    for (cell, label) in [(&drr, "drr"), (&classed, "classed-drr")] {
        assert!(
            cell.victim_jain >= 0.95,
            "{label}: victims should share equally, jain = {:.4}",
            cell.victim_jain
        );
        assert!(
            cell.jain_all >= 0.95,
            "{label}: even counting the hog the split should be fair, jain = {:.4}",
            cell.jain_all
        );
        assert!(
            cell.p99_ratio <= 2.0,
            "{label}: victim p99 should stay within 2x of the hog-free \
             baseline, got {:.2}x",
            cell.p99_ratio
        );
    }
}

#[test]
fn hog_bytes_are_accounted_at_the_server() {
    // knfsd, not the filer: the filer's NVRAM answers every WRITE
    // FILE_SYNC, so only the Linux server ever sees the hog's COMMIT
    // backlog. Short victim runs: tighten the fsync cadence so the
    // COMMIT traffic shows up before the victims finish.
    let mut config = QosConfig::new(ServerKind::Knfsd, SchedPolicy::classed_drr(), 3, 1 << 20);
    config.hog_fsync_every = 256 << 10;
    let run = run_qos(&config);
    // Victims in order, hog last.
    assert_eq!(run.per_client_server.len(), 4);
    for (i, c) in run.per_client_server[..3].iter().enumerate() {
        assert_eq!(c.write_bytes, 1 << 20, "victim {i} bytes all arrived");
    }
    let hog = &run.per_client_server[3];
    assert!(
        hog.write_bytes > 0,
        "the hog's stream must reach the server"
    );
    assert!(hog.commits > 0, "the hog's periodic fsync must send COMMITs");
    // The baseline world has no hog at all.
    let base = run_qos(&config.baseline());
    assert_eq!(base.per_client_server.len(), 3);
    assert_eq!(base.hog_mbps, 0.0);
}

#[test]
fn qos_sweep_is_bit_deterministic() {
    // Serial vs parallel: the CSV must not depend on --jobs.
    let scheds = [SchedPolicy::Fifo, SchedPolicy::classed_drr()];
    let a = qos_sweep(&[ServerKind::Filer], &scheds, 4, 1 << 20, 1);
    let b = qos_sweep(&[ServerKind::Filer], &scheds, 4, 1 << 20, 4);
    assert_eq!(a.to_csv(), b.to_csv(), "qos CSV must be bit-identical");
}
