//! Acceptance tests for the fleet scaling sweep: aggregate throughput
//! grows until the shared ceiling saturates, the plateau divides fairly,
//! and the whole pipeline is deterministic down to the CSV bytes.

use nfsperf_experiments::{fleet_sweep, run_fleet, FleetConfig, ServerKind};
use nfsperf_sunrpc::Transport;

const MB: u64 = 1 << 20;

#[test]
fn filer_aggregate_grows_to_knee_then_ceiling_bounds() {
    // 1 MB per client keeps every run shorter than the filer's first
    // checkpoint, so the curve shows the pure fan-in shape.
    let counts = [1usize, 2, 4, 8, 16];
    let sweep = fleet_sweep(&counts, &[ServerKind::Filer], &[Transport::Udp], MB, 1);
    let curve = sweep.series(ServerKind::Filer, Transport::Udp);
    let knee = sweep
        .knee(ServerKind::Filer, Transport::Udp)
        .expect("fast-ethernet clients must saturate the filer within the sweep");
    assert!(
        knee > 1,
        "one 100bT client cannot saturate the filer; knee = {knee}"
    );

    // Up to the knee, each doubling of the fleet buys real aggregate
    // throughput (100bT clients: close to linear).
    for pair in curve.windows(2) {
        let ((_, prev), (clients, agg)) = (pair[0], pair[1]);
        if clients <= knee {
            assert!(
                agg > prev * 1.5,
                "{clients} clients should out-write half the fleet: {agg:.1} vs {prev:.1} MB/s"
            );
        }
    }

    // Past the knee the server ceiling, not client count, bounds the
    // fleet: aggregate neither keeps scaling with N nor collapses.
    let at_knee = curve.iter().find(|(n, _)| *n == knee).unwrap().1;
    for (clients, agg) in curve.iter().filter(|(n, _)| *n > knee) {
        assert!(
            *agg < at_knee * 1.3,
            "{clients} clients should not scale past the ceiling: {agg:.1} vs {at_knee:.1} MB/s"
        );
        assert!(
            *agg > at_knee * 0.6,
            "{clients} clients should hold the ceiling, not collapse: {agg:.1} vs {at_knee:.1} MB/s"
        );
    }

    // The plateau divides fairly among identical clients.
    for cell in sweep.rows.iter().filter(|r| r.clients >= knee) {
        assert!(
            cell.jain >= 0.9,
            "{} clients at the plateau should share fairly, jain = {:.3}",
            cell.clients,
            cell.jain
        );
    }
}

#[test]
fn knfsd_fleet_holds_its_ceiling() {
    // The knfsd saturates early (bus-limited NIC + COMMIT disk flushes);
    // the regression this guards: concurrent COMMITs re-flushing the
    // shared dirty pool made aggregate throughput *fall* as clients were
    // added.
    let sweep = fleet_sweep(&[1, 2, 4, 8], &[ServerKind::Knfsd], &[Transport::Udp], MB, 1);
    let curve = sweep.series(ServerKind::Knfsd, Transport::Udp);
    let peak = curve.iter().map(|(_, a)| *a).fold(0.0, f64::max);
    for (clients, agg) in &curve {
        assert!(
            *agg > peak * 0.55,
            "{clients} clients must not drag aggregate below the ceiling: {agg:.1} vs peak {peak:.1} MB/s"
        );
    }
    assert!(
        curve.last().unwrap().1 > curve[0].1,
        "a second client should still add throughput over one 100bT client"
    );
    for cell in &sweep.rows {
        assert!(cell.jain >= 0.9, "jain = {:.3}", cell.jain);
    }
}

#[test]
fn fleet_runs_deterministically_across_transports() {
    for transport in [Transport::Udp, Transport::Tcp] {
        let config = FleetConfig::new(ServerKind::Filer, transport, 3, MB);
        let a = run_fleet(&config);
        let b = run_fleet(&config);
        assert_eq!(a.per_client_mbps, b.per_client_mbps);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.server_stats, b.server_stats);
        assert_eq!(a.per_client_server, b.per_client_server);
    }
}

#[test]
fn fleet_csv_is_bit_identical_for_the_same_seed() {
    // jobs = 1 vs jobs = 4: the parallel runner must reproduce the
    // serial CSV byte for byte, not just the same seed twice.
    let run = |jobs| {
        fleet_sweep(
            &[1, 2],
            &[ServerKind::Filer, ServerKind::Knfsd],
            &[Transport::Udp, Transport::Tcp],
            MB,
            jobs,
        )
    };
    let first = run(1);
    let second = run(4);
    assert_eq!(
        first.to_csv(),
        second.to_csv(),
        "same seed must reproduce fleet.csv byte for byte at any --jobs"
    );

    let dir = std::env::temp_dir().join("nfsperf-fleet-determinism");
    let pa = dir.join("a.csv");
    let pb = dir.join("b.csv");
    first.write_csv(&pa).unwrap();
    second.write_csv(&pb).unwrap();
    let (ba, bb) = (std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());
    assert!(!ba.is_empty());
    assert_eq!(ba, bb, "written CSV files must be bit-identical");
}
