//! Parallel-runner acceptance: the scoped-thread sweep executor must be
//! invisible in the output. Every sweep CSV is byte-identical whether
//! the cells run serially or fanned across workers, because cells are
//! isolated `Sim` worlds and results are collected in work-list order.

use nfsperf_experiments::{
    assemble_qos_rows, figures, fleet_sweep, qos_cells, qos_run_cells, qos_sweep, QosSweep,
    ServerKind,
};
use nfsperf_server::SchedPolicy;
use nfsperf_sim::proptest::{check, check_with, CaseOutcome, Config};
use nfsperf_sim::{prop_assert_eq, run_cells, Cell, Sim, SimDuration};
use nfsperf_sunrpc::Transport;

#[test]
fn fleet_quick_csv_identical_at_jobs_1_and_4() {
    let run = |jobs| {
        fleet_sweep(
            &[1, 2, 4],
            &[ServerKind::Filer],
            &[Transport::Udp, Transport::Tcp],
            1 << 20,
            jobs,
        )
        .to_csv()
    };
    let serial = run(1);
    assert!(serial.lines().count() > 1, "sweep produced rows");
    assert_eq!(serial, run(4), "fleet CSV must not depend on --jobs");
}

#[test]
fn qos_quick_csv_identical_at_jobs_1_and_4() {
    let scheds = [SchedPolicy::Fifo, SchedPolicy::classed_drr()];
    let run = |jobs| qos_sweep(&[ServerKind::Filer], &scheds, 4, 1 << 20, jobs).to_csv();
    let serial = run(1);
    assert!(serial.lines().count() > 1, "sweep produced rows");
    assert_eq!(serial, run(4), "qos CSV must not depend on --jobs");
}

/// One synthetic sweep cell: an isolated `Sim` world whose result is a
/// pure function of its parameters (a few sleeps plus arithmetic).
fn sim_cell(seed: u64, steps: u64) -> u64 {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let mut acc = seed;
        for i in 0..steps % 8 + 1 {
            s.sleep(SimDuration::from_nanos(seed % 1000 + i + 1)).await;
            acc = acc.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i);
        }
        acc ^ s.now().as_nanos()
    })
}

/// Property: for randomized work-lists (random lengths, random per-cell
/// parameters) and randomized worker counts, the parallel runner returns
/// exactly the serial result vector — order and values.
#[test]
fn randomized_worklists_match_serial_at_any_jobs() {
    check(
        "randomized_worklists_match_serial_at_any_jobs",
        |g| {
            let cells = g.vec(0, 24, |g| (g.any_u64(), g.u64_in(0, 64)));
            let jobs = g.usize_in(2, 9);
            (cells, jobs)
        },
        |(cells, jobs)| {
            let make = || -> Vec<Cell<u64>> {
                cells
                    .iter()
                    .enumerate()
                    .map(|(i, &(seed, steps))| {
                        Cell::new(format!("prop-{i}"), move || sim_cell(seed, steps))
                    })
                    .collect()
            };
            let serial = run_cells(1, make());
            let parallel = run_cells(*jobs, make());
            prop_assert_eq!(&serial, &parallel);
            CaseOutcome::Pass
        },
    );
}

/// Property: splitting a sweep into fine-grained phased cells is
/// invisible in the output. For randomized `--jobs` in 1..=8, the
/// phased qos work-list ([`qos_run_cells`] + [`assemble_qos_rows`]) and
/// the phased figure work-list ([`figures::exhibit_cells_with`] +
/// [`figures::assemble_exhibits`]) render byte-identical CSVs to the
/// pre-split monolithic cell lists they replaced.
#[test]
fn phased_cells_render_identical_csvs_to_monolithic() {
    // Tiny worlds: uniform 256 KB exhibits and two sub-MB figure-sweep
    // sizes keep a full phased-vs-monolithic double run cheap enough to
    // repeat for a handful of randomized jobs values.
    let sizes = [128 << 10, 256 << 10];
    let ex = figures::ExhibitSizes::uniform(256 << 10);
    let scheds = [SchedPolicy::Fifo, SchedPolicy::classed_drr()];
    let servers = [ServerKind::Filer];
    let config = Config {
        cases: 4,
        ..Config::from_env()
    };
    check_with(
        &config,
        "phased_cells_render_identical_csvs_to_monolithic",
        |g| g.usize_in(1, 9),
        |&jobs| {
            let csv = |rows| {
                QosSweep {
                    rows,
                    victims: 2,
                    bytes_per_victim: 256 << 10,
                }
                .to_csv()
            };
            let mono_rows = run_cells(jobs, qos_cells(&servers, &scheds, 2, 256 << 10));
            let phased_runs = run_cells(jobs, qos_run_cells(&servers, &scheds, 2, 256 << 10));
            let phased_rows = assemble_qos_rows(&servers, &scheds, 2, phased_runs);
            prop_assert_eq!(&csv(mono_rows), &csv(phased_rows));

            let mono = run_cells(jobs, figures::monolithic_exhibit_cells_with(&sizes, ex));
            let parts = run_cells(jobs, figures::exhibit_cells_with(&sizes, ex));
            let phased = figures::assemble_exhibits(&sizes, parts);
            prop_assert_eq!(&mono, &phased);
            CaseOutcome::Pass
        },
    );
}
