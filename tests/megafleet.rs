//! Acceptance tests for the megafleet pipeline: the calibrated
//! flyweight model reproduces the faithful client's wire behavior, the
//! mixed fleet treats both tiers fairly, and the whole sweep is
//! deterministic down to the CSV bytes.

use nfsperf_experiments::{
    megafleet_sweep, run_fleet, run_megafleet, FleetConfig, MegaConfig, ServerKind,
};
use nfsperf_fleet::{calibrate, BehaviorModel, CalibrationConfig, GAP_QUANTILES};
use nfsperf_sim::SimDuration;
use nfsperf_sunrpc::Transport;

/// Parses the golden-trace fixture checked in under `tests/golden/`.
fn golden_filer_model() -> BehaviorModel {
    let text = include_str!("golden/filer_calibration.txt");
    let mut fields = std::collections::HashMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (k, v) = line.split_once('=').expect("fixture line is key=value");
        fields.insert(k.to_owned(), v.to_owned());
    }
    let quantiles: Vec<u64> = fields["gap_quantiles"]
        .split(',')
        .map(|s| s.parse().expect("quantile"))
        .collect();
    assert_eq!(quantiles.len(), GAP_QUANTILES, "fixture quantile count");
    let mut gap_quantiles = [SimDuration::ZERO; GAP_QUANTILES];
    for (q, v) in gap_quantiles.iter_mut().zip(&quantiles) {
        *q = SimDuration(*v);
    }
    BehaviorModel {
        gap_quantiles,
        write_wire_bytes: fields["write_wire_bytes"].parse().unwrap(),
        commit_wire_bytes: fields["commit_wire_bytes"].parse().unwrap(),
        write_payload: fields["write_payload"].parse().unwrap(),
        writes_per_commit: fields["writes_per_commit"].parse().unwrap(),
        window: fields["window"].parse().unwrap(),
    }
}

#[test]
fn calibration_matches_the_golden_faithful_trace() {
    let cal = calibrate(&CalibrationConfig::new(
        ServerKind::Filer.server_config(),
        ServerKind::Filer.nic_spec(),
    ));
    assert_eq!(
        cal.model,
        golden_filer_model(),
        "calibrated model drifted from tests/golden/filer_calibration.txt — \
         the faithful write path changed; re-derive the fixture if intended"
    );
}

#[test]
fn flyweight_gap_distribution_matches_the_measured_trace() {
    // The same seed derivation the tier uses for its clients must draw
    // inter-arrival gaps inside the measured trace's range with a mean
    // within tolerance — the flyweight's arrival process *is* the
    // faithful client's.
    let cal = calibrate(&CalibrationConfig::new(
        ServerKind::Filer.server_config(),
        ServerKind::Filer.nic_spec(),
    ));
    let measured_min = cal.gaps.first().unwrap().0;
    let measured_max = cal.gaps.last().unwrap().0;
    let measured_mean =
        cal.gaps.iter().map(|g| g.0).sum::<u64>() as f64 / cal.gaps.len() as f64;

    let mut state = 0x1f5u64.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let n = 10_000;
    let mut sum = 0u64;
    for _ in 0..n {
        let g = cal.model.sample_gap(&mut state).0;
        assert!(
            g >= measured_min && g <= measured_max,
            "sampled gap {g} ns outside measured [{measured_min}, {measured_max}]"
        );
        sum += g;
    }
    let sampled_mean = sum as f64 / n as f64;
    let err = (sampled_mean - measured_mean).abs() / measured_mean;
    assert!(
        err < 0.10,
        "sampled mean gap {sampled_mean:.0} ns vs measured {measured_mean:.0} ns ({:.1}% off)",
        err * 100.0
    );

    // Size distribution: the replayed datagrams are the measured ones.
    assert!(cal.model.write_wire_bytes > 8192);
    assert!(cal.model.commit_wire_bytes < 8192);
}

#[test]
fn mixed_fleet_faithful_throughput_matches_the_pure_fleet() {
    // Acceptance: embed 4 faithful clients among 28 flyweights at the
    // same per-client load as the 32-client fleet sweep — the faithful
    // clients' mean throughput must stay within 5% of the pure fleet's.
    let bytes = 1u64 << 20;
    let pure = run_fleet(&FleetConfig::new(
        ServerKind::Filer,
        Transport::Udp,
        32,
        bytes,
    ));
    let pure_mean = pure.per_client_mbps.iter().sum::<f64>() / pure.per_client_mbps.len() as f64;

    let mixed = run_megafleet(&MegaConfig::new(ServerKind::Filer, 28, bytes));
    let mixed_mean =
        mixed.faithful_mbps.iter().sum::<f64>() / mixed.faithful_mbps.len() as f64;

    let err = (mixed_mean - pure_mean).abs() / pure_mean;
    assert!(
        err < 0.05,
        "mixed-fleet faithful mean {mixed_mean:.3} MB/s vs pure fleet {pure_mean:.3} MB/s \
         ({:.1}% apart)",
        err * 100.0
    );

    // And the flyweights compete as equals, not as background noise.
    let fly_mean = mixed.fly_mbps.iter().sum::<f64>() / mixed.fly_mbps.len() as f64;
    let tier_gap = (fly_mean - mixed_mean).abs() / mixed_mean;
    assert!(
        tier_gap < 0.10,
        "flyweight mean {fly_mean:.3} vs faithful mean {mixed_mean:.3} ({:.1}% apart)",
        tier_gap * 100.0
    );
}

#[test]
fn megafleet_csv_is_bit_identical_across_jobs_and_runs() {
    // jobs = 1 vs jobs = 4, plus a repeat: the parallel runner must
    // reproduce the serial CSV byte for byte, and the same input must
    // reproduce itself.
    let run = |jobs| {
        megafleet_sweep(
            &[16, 64],
            &[ServerKind::Filer, ServerKind::Knfsd],
            true,
            jobs,
        )
    };
    let first = run(1);
    let second = run(4);
    let third = run(4);
    assert_eq!(
        first.to_csv(),
        second.to_csv(),
        "same input must reproduce megafleet.csv byte for byte at any --jobs"
    );
    assert_eq!(second.to_csv(), third.to_csv(), "repeated runs must agree");

    let dir = std::env::temp_dir().join("nfsperf-megafleet-determinism");
    let pa = dir.join("a.csv");
    let pb = dir.join("b.csv");
    first.write_csv(&pa).unwrap();
    second.write_csv(&pb).unwrap();
    let (ba, bb) = (std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());
    assert!(!ba.is_empty());
    assert_eq!(ba, bb, "written CSV files must be bit-identical");
}

#[test]
fn megafleet_reports_flyweight_memory_within_budget() {
    let run = run_megafleet(&MegaConfig::new(ServerKind::Filer, 10_000, 16 << 10));
    assert!(
        run.bytes_per_client <= 256,
        "flyweight tier costs {} resident bytes per client",
        run.bytes_per_client
    );
    assert_eq!(run.slim_stats.clients, 10_000);
    assert_eq!(run.slim_stats.write_bytes, 10_000 * (16 << 10));
    // Both tiers' bytes land in the shared server counters. The faithful
    // tier may exceed its payload: under 10k-client queueing its UDP
    // RPCs time out and retransmit, and the server counts the duplicate
    // WRITEs it serves.
    let faithful_bytes = run.server_stats.write_bytes - run.slim_stats.write_bytes;
    assert!(
        faithful_bytes >= 4 * (16 << 10),
        "faithful tier bytes {faithful_bytes} below its payload"
    );
    assert!(
        faithful_bytes <= 4 * (16 << 10) * 2,
        "faithful tier bytes {faithful_bytes} — too many duplicates to be retransmits"
    );
}
