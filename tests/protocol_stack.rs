//! Cross-crate integration: the wire protocol stack end to end — XDR,
//! RPC framing, NFSv3 semantics, fragmentation, retransmission — driven
//! through the real network and server models.

use std::rc::Rc;

use nfsperf_client::{ClientTuning, MountConfig, NfsMount};
use nfsperf_kernel::{Kernel, KernelConfig, SimFile};
use nfsperf_net::{fragments_for, Nic, NicSpec, Path};
use nfsperf_nfs3::{FileHandle, NfsProc3, StableHow, Write3Args};
use nfsperf_server::{NfsServer, ServerConfig};
use nfsperf_sim::{Sim, SimDuration};
use nfsperf_sunrpc::{encode_call, AuthUnix, RpcXprt, XprtConfig};

fn world(
    server_config: ServerConfig,
    client_loss: f64,
) -> (
    Sim,
    Kernel,
    Rc<NfsMount>,
    Rc<NfsServer>,
    Rc<nfsperf_net::Nic>,
) {
    let sim = Sim::new();
    let kernel = Kernel::new(&sim, KernelConfig::default());
    let (cnic, crx) = Nic::with_loss(&sim, "client", NicSpec::gigabit(), client_loss, 77);
    let (snic, srx) = Nic::new(&sim, "server", NicSpec::gigabit());
    let to_server = Path::new(Rc::clone(&cnic), snic, Path::default_latency());
    let server = NfsServer::spawn(&sim, srx, to_server.reversed(), server_config);
    let mount = NfsMount::mount(
        &kernel,
        to_server,
        crx,
        MountConfig {
            tuning: ClientTuning::full_patch(),
            ..MountConfig::default()
        },
    );
    (sim, kernel, mount, server, cnic)
}

/// An 8 KiB WRITE3 call encodes to a ~8.3 KB datagram that fragments
/// into exactly 6 IP fragments at MTU 1500 — the framing arithmetic the
/// network model runs on is fed by real encodings.
#[test]
fn write_rpc_wire_size_and_fragments() {
    let cred = AuthUnix::root_on("client");
    let args = Write3Args::new(FileHandle::for_fileid(1), 0, 8192, StableHow::Unstable);
    let msg = encode_call(99, 100_003, 3, NfsProc3::Write as u32, &cred, &args);
    assert!(
        msg.len() > 8300 && msg.len() < 8400,
        "wire size {}",
        msg.len()
    );
    assert_eq!(fragments_for(msg.len(), 1500), 6);
    assert_eq!(fragments_for(msg.len(), 9000), 1);
}

/// A full benchmark run counts exactly the expected number of fragments
/// on the client NIC.
#[test]
fn fragment_accounting_matches_rpc_count() {
    let (sim, _kernel, mount, _server, cnic) = world(ServerConfig::netapp_f85(), 0.0);
    let m2 = Rc::clone(&mount);
    sim.run_until(async move {
        let file = m2.create("frag").await.unwrap();
        let mut off = 0;
        while off < (1 << 20) {
            file.write(off, 8192).await.unwrap();
            off += 8192;
        }
        file.close().await.unwrap();
    });
    let stats = mount.xprt().stats();
    // Each 8 KiB WRITE is 6 fragments; CREATE and any COMMITs are 1 each.
    let writes = mount.stats().write_rpcs;
    let others = stats.calls - writes;
    assert_eq!(cnic.fragments_sent(), writes * 6 + others);
}

/// The client survives datagram loss through RPC retransmission, and the
/// file still arrives intact.
#[test]
fn lossy_network_recovers_via_retransmission() {
    let (sim, _kernel, mount, server, cnic) = world(ServerConfig::netapp_f85(), 0.3);
    let m2 = Rc::clone(&mount);
    let fh = sim.run_until(async move {
        let file = m2.create("lossy").await.unwrap();
        let mut off = 0;
        while off < (256 << 10) {
            file.write(off, 8192).await.unwrap();
            off += 8192;
        }
        file.close().await.unwrap();
        file.inode().fh
    });
    assert!(cnic.drops() > 0, "loss injection must have fired");
    assert!(
        mount.xprt().stats().retransmits > 0,
        "retransmissions must have recovered the drops"
    );
    assert_eq!(server.fs.size_of(&fh).unwrap(), 256 << 10);
}

/// Duplicate replies (from retransmitted requests whose originals also
/// arrived) are counted as orphans, not crashes.
#[test]
fn duplicate_replies_are_orphaned() {
    let sim = Sim::new();
    let kernel = Kernel::new(&sim, KernelConfig::default());
    let (cnic, crx) = Nic::new(&sim, "client", NicSpec::gigabit());
    let (snic, srx) = Nic::new(&sim, "server", NicSpec::gigabit());
    let to_server = Path::new(Rc::clone(&cnic), Rc::clone(&snic), Path::default_latency());
    let to_client = to_server.reversed();
    // A server that answers every call twice.
    {
        let sim2 = sim.clone();
        sim.spawn(async move {
            while let Some(payload) = srx.recv().await {
                let (hdr, _) = nfsperf_sunrpc::decode_call(&payload).unwrap();
                sim2.sleep(SimDuration::from_micros(10)).await;
                to_client.send(nfsperf_sunrpc::encode_reply(hdr.xid, &1u32));
                to_client.send(nfsperf_sunrpc::encode_reply(hdr.xid, &1u32));
            }
        });
    }
    let xprt = RpcXprt::new(&kernel, to_server, crx, 100_003, 3, XprtConfig::default());
    let x2 = Rc::clone(&xprt);
    let s2 = sim.clone();
    sim.run_until(async move {
        for _ in 0..5 {
            x2.call(0, &0u32).await.unwrap();
        }
        s2.sleep(SimDuration::from_millis(5)).await;
    });
    let stats = xprt.stats();
    assert_eq!(stats.replies, 5);
    assert_eq!(stats.orphan_replies, 5, "second copies are orphans");
}

/// NFSv3 close-to-open consistency: after close, the server's view of
/// the file is complete and the client holds no pinned pages, for both
/// stable and unstable servers.
#[test]
fn close_to_open_consistency_both_servers() {
    for config in [ServerConfig::netapp_f85(), ServerConfig::linux_knfsd()] {
        let name = config.name;
        let (sim, kernel, mount, server, _cnic) = world(config, 0.0);
        let m2 = Rc::clone(&mount);
        let fh = sim.run_until(async move {
            let file = m2.create("c2o").await.unwrap();
            let mut off = 0;
            while off < (3 << 20) {
                file.write(off, 8192).await.unwrap();
                off += 8192;
            }
            file.close().await.unwrap();
            file.inode().fh
        });
        assert_eq!(server.fs.size_of(&fh).unwrap(), 3 << 20, "server {name}");
        assert_eq!(kernel.mem.dirty_pages(), 0, "server {name}");
        assert_eq!(mount.outstanding_requests(), 0, "server {name}");
    }
}

/// Multiple files on one mount share the transport and the hard limit,
/// and all flush correctly at close.
#[test]
fn multiple_files_share_one_mount() {
    let (sim, kernel, mount, server, _cnic) = world(ServerConfig::netapp_f85(), 0.0);
    let m2 = Rc::clone(&mount);
    let handles = sim.run_until(async move {
        let a = m2.create("a.dat").await.unwrap();
        let b = m2.create("b.dat").await.unwrap();
        // Interleave writes to both files.
        let mut off = 0;
        while off < (1 << 20) {
            a.write(off, 8192).await.unwrap();
            b.write(off, 8192).await.unwrap();
            off += 8192;
        }
        a.close().await.unwrap();
        b.close().await.unwrap();
        (a.inode().fh, b.inode().fh)
    });
    assert_eq!(server.fs.size_of(&handles.0).unwrap(), 1 << 20);
    assert_eq!(server.fs.size_of(&handles.1).unwrap(), 1 << 20);
    assert_eq!(server.fs.file_count(), 2);
    assert_eq!(kernel.mem.dirty_pages(), 0);
}

/// Sub-page and unaligned writes coalesce into page requests and arrive
/// intact (the merge path of nfs_update_request).
#[test]
fn unaligned_writes_coalesce() {
    let (sim, _kernel, mount, server, _cnic) = world(ServerConfig::netapp_f85(), 0.0);
    let m2 = Rc::clone(&mount);
    let fh = sim.run_until(async move {
        let file = m2.create("unaligned").await.unwrap();
        // 1000-byte writes: most land within a page and merge.
        let mut off = 0;
        while off < 50_000 {
            file.write(off, 1000).await.unwrap();
            off += 1000;
        }
        file.close().await.unwrap();
        file.inode().fh
    });
    assert_eq!(server.fs.size_of(&fh).unwrap(), 50_000);
}

/// The jumbo-frame configuration carries every WRITE in one fragment
/// end to end.
#[test]
fn jumbo_frames_one_fragment_per_write() {
    let sim = Sim::new();
    let kernel = Kernel::new(&sim, KernelConfig::default());
    let (cnic, crx) = Nic::new(&sim, "client", NicSpec::gigabit_jumbo());
    let (snic, srx) = Nic::new(&sim, "server", NicSpec::gigabit_jumbo());
    let to_server = Path::new(Rc::clone(&cnic), snic, Path::default_latency());
    let _server = NfsServer::spawn(&sim, srx, to_server.reversed(), ServerConfig::netapp_f85());
    let mount = NfsMount::mount(
        &kernel,
        to_server,
        crx,
        MountConfig {
            tuning: ClientTuning::full_patch(),
            ..MountConfig::default()
        },
    );
    let m2 = Rc::clone(&mount);
    sim.run_until(async move {
        let file = m2.create("jumbo").await.unwrap();
        let mut off = 0;
        while off < (512 << 10) {
            file.write(off, 8192).await.unwrap();
            off += 8192;
        }
        file.close().await.unwrap();
    });
    let calls = mount.xprt().stats().calls;
    assert_eq!(cnic.fragments_sent(), calls, "one fragment per RPC");
}

/// Asynchronous write errors: the server runs out of space mid-file; the
/// writer does not see the error at `write()` (writeback is
/// asynchronous), but `close()` reports it and no pages leak.
#[test]
fn enospc_reported_at_close_without_leaks() {
    let sim = Sim::new();
    let kernel = Kernel::new(&sim, KernelConfig::default());
    let (cnic, crx) = Nic::new(&sim, "client", NicSpec::gigabit());
    let (snic, srx) = Nic::new(&sim, "server", NicSpec::gigabit());
    let to_server = Path::new(Rc::clone(&cnic), snic, Path::default_latency());
    let config = ServerConfig {
        write_error_after: Some(256 << 10),
        ..ServerConfig::netapp_f85()
    };
    let _server = NfsServer::spawn(&sim, srx, to_server.reversed(), config);
    let mount = NfsMount::mount(
        &kernel,
        to_server,
        crx,
        MountConfig {
            tuning: ClientTuning::full_patch(),
            ..MountConfig::default()
        },
    );
    let m2 = Rc::clone(&mount);
    let outcome = sim.run_until(async move {
        let file = m2.create("nospc").await.unwrap();
        let mut off = 0;
        while off < (1 << 20) {
            // Asynchronous writeback: write() itself keeps succeeding.
            file.write(off, 8192).await.unwrap();
            off += 8192;
        }
        file.close().await
    });
    assert_eq!(
        outcome.unwrap_err(),
        nfsperf_kernel::VfsError::Server(nfsperf_nfs3::NfsStat3::Nospc as u32),
        "ENOSPC must surface at close"
    );
    assert_eq!(kernel.mem.dirty_pages(), 0, "failed writes must not pin pages");
    assert_eq!(mount.outstanding_requests(), 0);
    assert!(mount.stats().write_failures > 0);
}
