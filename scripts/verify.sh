#!/usr/bin/env bash
# Hermetic verification: build, test, lint and smoke-run the workspace
# with networking disabled. The workspace has zero external dependencies
# (rng/proptest/bench harness are all in-tree), so every step must pass
# with --offline against an empty cargo registry.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --workspace --offline"
cargo test -q --workspace --offline

echo "==> cargo clippy --all-targets --workspace --offline -- -D warnings"
cargo clippy --all-targets --workspace --offline -- -D warnings

echo "==> zero-alloc steady state smoke (counting global allocator, release)"
# The flyweight engine must retire RPCs without touching the heap once
# warm: the counting allocator asserts two disjoint steady-state windows
# allocate identically (and near zero). Run it in release so the test
# exercises the same codegen as the benchmarks.
cargo test -q --release --offline -p nfsperf-fleet --test zero_alloc

echo "==> quickstart smoke run"
out="$(cargo run -q --release --offline --example quickstart)"
echo "$out"
# The example prints "  write throughput :    <mbps> MB/s"; require > 0.
echo "$out" | awk '
    /write throughput/ {
        seen = 1
        if ($4 + 0 <= 0) { print "FAIL: zero write throughput"; exit 1 }
    }
    END {
        if (!seen) { print "FAIL: no throughput line in quickstart output"; exit 1 }
    }'

echo "==> quickstart smoke run over TCP"
out="$(cargo run -q --release --offline --example quickstart -- --transport tcp)"
echo "$out"
echo "$out" | awk '
    /write throughput/ {
        seen = 1
        if ($4 + 0 <= 0) { print "FAIL: zero write throughput over TCP"; exit 1 }
    }
    /RPC transport/ {
        if ($3 != "(tcp):") { print "FAIL: quickstart did not mount over TCP"; exit 1 }
    }
    END {
        if (!seen) { print "FAIL: no throughput line in TCP quickstart output"; exit 1 }
    }'

echo "==> fleet smoke run (small N, --jobs 4 vs --jobs 1 bit-identical)"
out="$(cargo run -q --release --offline --bin nfsperf -- fleet --quick --jobs 4 --out results/fleet-quick.csv)"
echo "$out"
cargo run -q --release --offline --bin nfsperf -- fleet --quick --jobs 1 --out results/fleet-quick-serial.csv > /dev/null
cmp results/fleet-quick.csv results/fleet-quick-serial.csv \
    || { echo "FAIL: fleet sweep differs between --jobs 4 and --jobs 1"; exit 1; }
rm -f results/fleet-quick-serial.csv
# Every data row ends in a Jain index; fairness must hold even at small N.
awk -F, 'NR > 1 {
        rows++
        if ($4 + 0 <= 0) { print "FAIL: zero aggregate throughput: " $0; exit 1 }
        if ($7 + 0 < 0.9) { print "FAIL: unfair fleet (jain < 0.9): " $0; exit 1 }
    }
    END {
        if (rows == 0) { print "FAIL: empty fleet-quick.csv"; exit 1 }
    }' results/fleet-quick.csv

echo "==> qos smoke run (quick, --jobs 4 vs --jobs 1 bit-identical)"
out="$(cargo run -q --release --offline --bin nfsperf -- qos --quick --jobs 4 --out results/qos-quick.csv)"
echo "$out"
cargo run -q --release --offline --bin nfsperf -- qos --quick --jobs 1 --out results/qos-quick-2.csv > /dev/null
cmp results/qos-quick.csv results/qos-quick-2.csv \
    || { echo "FAIL: qos sweep differs between --jobs 4 and --jobs 1"; exit 1; }
rm -f results/qos-quick-2.csv
# FIFO must show the hog starving victims; DRR rows must restore fairness.
awk -F, 'NR > 1 {
        rows++
        if ($2 == "fifo" && $7 + 0 >= 0.6) { print "FAIL: no starvation under fifo: " $0; exit 1 }
        if ($2 != "fifo" && $7 + 0 < 0.95) { print "FAIL: unfair under " $2 ": " $0; exit 1 }
    }
    END {
        if (rows == 0) { print "FAIL: empty qos-quick.csv"; exit 1 }
    }' results/qos-quick.csv

echo "==> megafleet smoke run (10k flyweights, --jobs 4 vs --jobs 1 bit-identical)"
out="$(cargo run -q --release --offline --bin nfsperf -- megafleet --quick --counts 10000 --jobs 4 --out results/megafleet-smoke.csv)"
echo "$out"
cargo run -q --release --offline --bin nfsperf -- megafleet --quick --counts 10000 --jobs 1 --out results/megafleet-smoke-2.csv > /dev/null
cmp results/megafleet-smoke.csv results/megafleet-smoke-2.csv \
    || { echo "FAIL: megafleet sweep differs between --jobs 4 and --jobs 1"; exit 1; }
rm -f results/megafleet-smoke-2.csv
# Every cell must move bytes, keep the faithful tier fair, and hold the
# flyweight memory budget (column 12: resident bytes per client).
awk -F, 'NR == 1 {
        if ($13 != "at_knee") { print "FAIL: megafleet CSV missing at_knee column"; exit 1 }
    }
    NR > 1 {
        rows++
        if ($4 + 0 <= 0) { print "FAIL: zero aggregate throughput: " $0; exit 1 }
        if ($8 + 0 < 0.9) { print "FAIL: unfair faithful tier (jain < 0.9): " $0; exit 1 }
        if ($12 + 0 > 256) { print "FAIL: flyweight over 256 B/client: " $0; exit 1 }
        if ($11 + 0 <= 0) { print "FAIL: zero simulated events: " $0; exit 1 }
    }
    END {
        if (rows == 0) { print "FAIL: empty megafleet-smoke.csv"; exit 1 }
    }' results/megafleet-smoke.csv

echo "==> cawl smoke run (quick, --jobs 4 vs --jobs 1 bit-identical)"
out="$(cargo run -q --release --offline --bin nfsperf -- cawl --quick --jobs 4 --out results/cawl-quick.csv)"
echo "$out"
cargo run -q --release --offline --bin nfsperf -- cawl --quick --jobs 1 --out results/cawl-quick-2.csv > /dev/null
cmp results/cawl-quick.csv results/cawl-quick-2.csv \
    || { echo "FAIL: cawl sweep differs between --jobs 4 and --jobs 1"; exit 1; }
rm -f results/cawl-quick-2.csv
# Both regimes must appear; a file under the dirty ratio never throttles;
# a throttled cell pins exactly at the hard limit (the knee); every cell
# moves data.
awk -F, '
    NR > 1 {
        rows++
        if ($11 == "cache-fit") fit++
        if ($11 == "writeback-bound") bound++
        if ($4 + 0 == 0.5 && $7 + 0 != 0) { print "FAIL: sub-ratio cell throttled: " $0; exit 1 }
        if ($7 + 0 > 0 && $9 != $10) { print "FAIL: throttled cell not pinned at hard limit: " $0; exit 1 }
        if ($5 + 0 <= 0) { print "FAIL: zero app throughput: " $0; exit 1 }
    }
    END {
        if (rows == 0) { print "FAIL: empty cawl-quick.csv"; exit 1 }
        if (!fit || !bound) { print "FAIL: cawl sweep must show both regimes"; exit 1 }
    }' results/cawl-quick.csv
rm -f results/cawl-quick.csv

echo "==> netqos smoke run (quick, --jobs 4 vs --jobs 1 bit-identical)"
out="$(cargo run -q --release --offline --bin nfsperf -- netqos --quick --jobs 4 --out results/netqos-quick.csv)"
echo "$out"
cargo run -q --release --offline --bin nfsperf -- netqos --quick --jobs 1 --out results/netqos-quick-2.csv > /dev/null
cmp results/netqos-quick.csv results/netqos-quick-2.csv \
    || { echo "FAIL: netqos sweep differs between --jobs 4 and --jobs 1"; exit 1; }
rm -f results/netqos-quick-2.csv
# The port scheduler, not the server, decides who wins the uplink: FIFO
# must let the incast mix collapse fairness among the victims (column 11,
# Jain over victims only) while any fair policy holds it at >= 0.9 and
# every cell still moves victim bytes.
awk -F, 'NR > 1 {
        rows++
        if ($2 == "port-fifo" && $3 == "incast") {
            fifo_incast++
            if ($11 + 0 >= 0.6) { print "FAIL: port-fifo did not starve meek victims: " $0; exit 1 }
        }
        if ($2 != "port-fifo" && $11 + 0 < 0.9) { print "FAIL: unfair victims under " $2 ": " $0; exit 1 }
        if ($6 + 0 <= 0) { print "FAIL: zero victim throughput: " $0; exit 1 }
    }
    END {
        if (rows == 0) { print "FAIL: empty netqos-quick.csv"; exit 1 }
        if (!fifo_incast) { print "FAIL: netqos sweep missing the port-fifo incast cell"; exit 1 }
    }' results/netqos-quick.csv
rm -f results/netqos-quick.csv

echo "==> harness micro-benchmark (results/bench.json vs committed baseline)"
# Compare against the committed baseline; a sweep whose events/sec drops
# more than the tolerance below it fails the build. The default 30% is
# generous because quick cells run ~50-150 ms and CI machines are noisy;
# override with NFSPERF_BENCH_TOLERANCE=0.50 etc. when needed.
out="$(cargo run -q --release --offline --bin nfsperf -- bench --jobs 4 \
    --out results/bench.json \
    --against results/bench_baseline.json \
    --tolerance "${NFSPERF_BENCH_TOLERANCE:-0.30}")"
echo "$out"
grep -q '"sweeps"' results/bench.json || { echo "FAIL: malformed bench.json"; exit 1; }
# Every measured sweep must have retired simulated events.
if grep -q '"events": 0,' results/bench.json; then
    echo "FAIL: a bench sweep retired zero events"
    exit 1
fi

echo "==> no external dependencies"
if grep -rn "^rand\|^proptest\|^criterion" Cargo.toml crates/*/Cargo.toml; then
    echo "FAIL: external dependency lines found above"
    exit 1
fi

echo "verify: all checks passed"
