//! `nfsperf` — command-line driver for the reproduction.
//!
//! ```text
//! nfsperf run --tuning full-patch --server filer --size-mb 100 [options]
//! nfsperf figures [--quick] [--out DIR] [--jobs N]
//! nfsperf table1
//! nfsperf concurrency
//! nfsperf transport [--quick] [--jobs N]
//! nfsperf fleet [--quick] [--out FILE] [--jobs N]
//! nfsperf megafleet [--quick] [--counts LIST] [--out FILE] [--jobs N]
//! nfsperf qos [--quick] [--out FILE] [--jobs N]
//! nfsperf netqos [--quick] [--port-sched P] [--out FILE] [--jobs N]
//! nfsperf cawl [--quick] [--out FILE] [--jobs N]
//! nfsperf bench [--jobs N] [--out FILE] [--against OLD.json] [--tolerance T]
//! nfsperf help
//! ```
//!
//! Sweep commands fan their independent cells across `--jobs` worker
//! threads (default: `NFSPERF_JOBS`, else the machine's parallelism) via
//! [`nfsperf_sim::runner`]; output is bit-identical at any jobs count.
//!
//! Argument parsing is deliberately hand rolled: the workspace has no
//! CLI-framework dependency and the grammar is tiny.

use std::process::ExitCode;

use nfsperf_client::ClientTuning;
use nfsperf_experiments::{
    cawl_cells, cawl_sweep, figures, fleet_cells, fleet_sweep, megafleet_cells, megafleet_sweep,
    netqos_sweep, qos_run_cells, qos_sweep, run_bonnie, transport_cells, transport_sweep, NetSched,
    Scenario, ServerKind, TrafficMix, CAWL_QUICK_RAM_SIZES, CAWL_QUICK_SERVERS, CAWL_RAM_SIZES,
    CAWL_SERVERS, FLEET_CLIENT_COUNTS, LOSS_RATES, MEGAFLEET_COUNTS, MEGAFLEET_QUICK_COUNTS,
};
use nfsperf_server::SchedPolicy;
use nfsperf_sim::{runner, BenchReport, SimDuration, SweepStats};
use nfsperf_sunrpc::Transport;

fn usage() -> &'static str {
    "nfsperf — Linux NFS Client Write Performance (Lever & Honeyman 2002), simulated

USAGE:
    nfsperf run [--tuning T] [--server S] [--size-mb N] [--cpus N]
                [--ram-mb N] [--slots N] [--jumbo] [--seed N]
                [--transport X] [--loss P] [--latencies FILE]
    nfsperf figures [--quick] [--out DIR] [--jobs N]
    nfsperf table1
    nfsperf concurrency
    nfsperf transport [--quick] [--jobs N]
    nfsperf fleet [--quick] [--out FILE] [--jobs N]
    nfsperf megafleet [--quick] [--counts LIST] [--out FILE] [--jobs N]
    nfsperf qos [--quick] [--out FILE] [--jobs N]
    nfsperf netqos [--quick] [--port-sched P] [--out FILE] [--jobs N]
    nfsperf cawl [--quick] [--out FILE] [--jobs N]
    nfsperf bench [--jobs N] [--out FILE] [--against OLD.json]
                  [--tolerance T]
    nfsperf help

OPTIONS (run):
    --tuning    linux-2.4.4 | no-flush | hash-table | full-patch
                | cawl (full patch + foreground throttling)        [full-patch]
    --server    filer | knfsd | slow | fast                        [filer]
    --size-mb   file size in MB                                    [100]
    --cpus      client CPUs                                        [2]
    --ram-mb    client RAM in MB                                   [256]
    --slots     RPC slot-table size                                [16]
    --jumbo     9000-byte MTU on both ends
    --seed      RNG seed                                           [0x1f5]
    --transport udp | tcp                                          [udp]
    --loss      per-fragment datagram loss probability             [0]
    --latencies write per-call latencies as CSV to FILE

COMMANDS:
    transport   UDP vs UDP+jumbo vs TCP matrix across loss rates
                (8 MB per cell; --quick for 2 MB)
    fleet       client scaling sweep, 1-32 clients x {filer, knfsd} x
                {udp, tcp} through one shared uplink (4 MB per client;
                --quick for 1-4 clients at 1 MB); writes CSV to --out
                [results/fleet.csv]
    megafleet   flyweight fleet sweep: 1k-1M behavioral clients (plus 4
                embedded faithful clients) through a two-tier switch
                fabric into {filer, knfsd}; per-cell calibration against
                the target server; reports aggregate MB/s, per-tier Jain,
                p99s, and resident bytes per flyweight. --quick stops at
                100k clients; --counts takes a comma list (e.g.
                1000,100000). Writes CSV to --out [results/megafleet.csv]
    qos         unfair-workload sweep: one hog (gigabit NIC, 64 RPC
                slots, 32 KB writes, periodic fsync) vs 7 victims,
                {filer, knfsd} x {fifo, drr, classed-drr} (--quick for
                filer only with 4 victims); writes CSV to --out
                [results/qos.csv]
    netqos      network-QoS sweep: open-loop heavy-tailed aggressors
                (hog / incast / sync-storm mixes) vs 7 NFS victims at the
                shared switch uplink, {filer, knfsd} x {port-fifo,
                port-drr, port-wrr} (--quick for knfsd only at 1 MB per
                victim); --port-sched restricts to one policy; writes CSV
                to --out [results/netqos.csv]
    cawl        cache-aware memory-model regime sweep: client RAM
                {64 MB, 256 MB, 1 GB} x server {filer, knfsd, fast} x
                file size {0.5x, 1x, 2x, 4x RAM} under the cawl tuning;
                marks each cell cache-fit or writeback-bound (--quick
                for 16 MB RAM x {filer, fast}); writes CSV to --out
                [results/cawl.csv]
    bench       micro-benchmark of the sweep harness itself: runs the
                quick fleet/qos/transport/cawl/megafleet sweeps serially and
                again at
                --jobs, reporting wall-clock and simulated events/sec;
                writes JSON to --out [results/bench.json]. With
                --against OLD.json, diffs events/sec and speedup per
                sweep against that committed baseline and exits nonzero
                on a drop past --tolerance [0.30]

    --jobs N    worker threads for a sweep's independent cells
                [NFSPERF_JOBS, else the machine's parallelism]; results
                are bit-identical at any value
"
}

fn parse_tuning(s: &str) -> Option<ClientTuning> {
    Some(match s {
        "linux-2.4.4" | "stock" => ClientTuning::linux_2_4_4(),
        "no-flush" => ClientTuning::no_flush(),
        "hash-table" | "normal" => ClientTuning::hash_table(),
        "full-patch" | "no-lock" => ClientTuning::full_patch(),
        "cawl" => ClientTuning::cawl(),
        _ => return None,
    })
}

fn parse_server(s: &str) -> Option<ServerKind> {
    Some(match s {
        "filer" | "netapp" => ServerKind::Filer,
        "knfsd" | "linux" => ServerKind::Knfsd,
        "slow" | "100bt" => ServerKind::Slow100,
        "fast" => ServerKind::Fast,
        _ => return None,
    })
}

struct Args {
    items: Vec<String>,
}

impl Args {
    fn flag(&mut self, name: &str) -> bool {
        if let Some(i) = self.items.iter().position(|a| a == name) {
            self.items.remove(i);
            true
        } else {
            false
        }
    }

    fn value(&mut self, name: &str) -> Result<Option<String>, String> {
        if let Some(i) = self.items.iter().position(|a| a == name) {
            if i + 1 >= self.items.len() {
                return Err(format!("{name} needs a value"));
            }
            let v = self.items.remove(i + 1);
            self.items.remove(i);
            Ok(Some(v))
        } else {
            Ok(None)
        }
    }

    fn parsed<T: std::str::FromStr>(&mut self, name: &str) -> Result<Option<T>, String> {
        match self.value(name)? {
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("bad value for {name}: {v}")),
            None => Ok(None),
        }
    }

    fn finish(&self) -> Result<(), String> {
        if self.items.is_empty() {
            Ok(())
        } else {
            Err(format!("unrecognised arguments: {:?}", self.items))
        }
    }

    /// `--jobs N` if given (must be positive), else the runner default
    /// (`NFSPERF_JOBS`, else the machine's parallelism).
    fn jobs(&mut self) -> Result<usize, String> {
        match self.parsed::<usize>("--jobs")? {
            Some(0) => Err("--jobs must be at least 1".into()),
            Some(n) => Ok(n),
            None => Ok(runner::default_jobs()),
        }
    }
}

fn cmd_run(mut args: Args) -> Result<(), String> {
    let tuning = match args.value("--tuning")? {
        Some(v) => parse_tuning(&v).ok_or(format!("unknown tuning {v}"))?,
        None => ClientTuning::full_patch(),
    };
    let server = match args.value("--server")? {
        Some(v) => parse_server(&v).ok_or(format!("unknown server {v}"))?,
        None => ServerKind::Filer,
    };
    let size_mb: u64 = args.parsed("--size-mb")?.unwrap_or(100);
    let mut scenario = Scenario::new(tuning, server);
    if let Some(cpus) = args.parsed("--cpus")? {
        scenario.ncpus = cpus;
    }
    if let Some(ram_mb) = args.parsed::<u64>("--ram-mb")? {
        scenario.ram_bytes = ram_mb << 20;
    }
    if let Some(slots) = args.parsed("--slots")? {
        scenario.mount.slots = slots;
    }
    if let Some(seed) = args.parsed("--seed")? {
        scenario.seed = seed;
    }
    if args.flag("--jumbo") {
        scenario = scenario.with_jumbo_frames();
    }
    let transport = match args.value("--transport")? {
        Some(v) => Transport::parse(&v).ok_or(format!("unknown transport {v}"))?,
        None => Transport::Udp,
    };
    scenario = scenario.with_transport(transport);
    if let Some(loss) = args.parsed::<f64>("--loss")? {
        if !(0.0..1.0).contains(&loss) {
            return Err(format!("--loss {loss} not in [0, 1)"));
        }
        scenario = scenario.with_loss(loss);
    }
    let latency_file = args.value("--latencies")?;
    args.finish()?;

    let out = run_bonnie(&scenario, size_mb << 20);
    let r = &out.report;
    println!(
        "run: tuning={} server={} transport={} size={}MB cpus={} ram={}MB slots={}",
        tuning.label(),
        server.label(),
        transport.label(),
        size_mb,
        scenario.ncpus,
        scenario.ram_bytes >> 20,
        scenario.mount.slots,
    );
    println!("  write throughput : {:>8.1} MB/s", r.write_mbps());
    println!("  through flush    : {:>8.1} MB/s", r.flush_mbps());
    println!("  through close    : {:>8.1} MB/s", r.close_mbps());
    println!("  mean latency     : {}", r.mean_latency());
    println!(
        "  mean excl >1ms   : {}",
        r.mean_latency_excluding(SimDuration::from_millis(1))
    );
    println!(
        "  calls >1ms       : {}",
        r.spikes(SimDuration::from_millis(1))
    );
    println!(
        "  rpcs             : {} WRITE, {} COMMIT, {} retransmits",
        out.mount_stats.write_rpcs, out.mount_stats.commit_rpcs, out.xprt_stats.retransmits
    );
    println!(
        "  lock             : {} acquisitions, total wait {}",
        out.lock_stats.acquisitions, out.lock_stats.total_wait
    );
    println!("  net tx           : {:>8.1} MB/s", out.net_tx_mbps);
    if let Some(t) = out.tcp_stats {
        println!(
            "  tcp              : {} connects, {} retransmits ({} fast), {} RTOs",
            t.connects, t.retransmits, t.fast_retransmits, t.rto_timeouts
        );
    }
    if out.client_drops > 0 {
        println!("  client drops     : {}", out.client_drops);
    }
    println!("  profile top 3    :");
    for row in out.profile.iter().take(3) {
        println!("      {:22} {}", row.label, row.time);
    }
    if let Some(path) = latency_file {
        let mut csv = String::from("call,latency_us\n");
        for (i, l) in r.latencies.iter().enumerate() {
            csv.push_str(&format!("{},{:.3}\n", i, l.as_micros_f64()));
        }
        std::fs::write(&path, csv).map_err(|e| format!("write {path}: {e}"))?;
        println!("  latencies        : wrote {path}");
    }
    Ok(())
}

fn cmd_figures(mut args: Args) -> Result<(), String> {
    let quick = args.flag("--quick");
    let out_dir = args.value("--out")?.unwrap_or_else(|| "results".into());
    let jobs = args.jobs()?;
    args.finish()?;
    let sizes = if quick {
        figures::quick_file_sizes()
    } else {
        figures::paper_file_sizes()
    };
    let dir = std::path::Path::new(&out_dir);
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    // Phased work-list: every exhibit split into its independent worlds
    // (one cell per throughput point, histogram half, table entry, ...)
    // so the pool always has work; `assemble_exhibits` pairs the parts
    // back into CSVs byte-identical to the monolithic exhibits.
    let cells = figures::exhibit_cells(&sizes);
    eprintln!("rendering {} exhibit cells on {} worker(s) ...", cells.len(), jobs);
    let parts = runner::run_cells(jobs, cells);
    for (name, body) in figures::assemble_exhibits(&sizes, parts) {
        std::fs::write(dir.join(name), body).map_err(|e| e.to_string())?;
    }
    println!("wrote figures to {out_dir}/");
    Ok(())
}

fn cmd_table1(args: Args) -> Result<(), String> {
    args.finish()?;
    let t = figures::table1();
    println!("Table 1 — memory write throughput (MB/s), 5 MB file");
    println!("                      Normal   No lock");
    println!(
        "  NetApp filer        {:>6.0}   {:>7.0}",
        t.filer_normal, t.filer_no_lock
    );
    println!(
        "  Linux NFS server    {:>6.0}   {:>7.0}",
        t.linux_normal, t.linux_no_lock
    );
    Ok(())
}

fn cmd_concurrency(args: Args) -> Result<(), String> {
    args.finish()?;
    println!("two concurrent writers, 8 MB each:");
    for (label, r) in nfsperf_experiments::future_work_comparison(8 << 20) {
        println!(
            "  {label:28} 1w {:>6.1} MB/s  2w {:>6.1} MB/s  x{:.2}",
            r.one_writer_mbps,
            r.two_writers_mbps,
            r.scaling()
        );
    }
    Ok(())
}

fn cmd_transport(mut args: Args) -> Result<(), String> {
    let quick = args.flag("--quick");
    let jobs = args.jobs()?;
    args.finish()?;
    let size: u64 = if quick { 2 << 20 } else { 8 << 20 };
    println!(
        "transport x loss sweep: {} MB sequential write, full patch, filer server",
        size >> 20
    );
    let sweep = transport_sweep(size, LOSS_RATES, jobs);
    println!("{}", sweep.render());
    Ok(())
}

fn cmd_fleet(mut args: Args) -> Result<(), String> {
    let quick = args.flag("--quick");
    let out = args
        .value("--out")?
        .unwrap_or_else(|| "results/fleet.csv".into());
    let jobs = args.jobs()?;
    args.finish()?;
    let counts: &[usize] = if quick { &[1, 2, 4] } else { FLEET_CLIENT_COUNTS };
    let bytes_per_client: u64 = if quick { 1 << 20 } else { 4 << 20 };
    println!(
        "fleet scaling sweep: {} MB per client, shared uplink at the server NIC rate",
        bytes_per_client >> 20
    );
    let sweep = fleet_sweep(
        counts,
        &[ServerKind::Filer, ServerKind::Knfsd],
        &[Transport::Udp, Transport::Tcp],
        bytes_per_client,
        jobs,
    );
    println!("{}", sweep.render());
    sweep
        .write_csv(std::path::Path::new(&out))
        .map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_megafleet(mut args: Args) -> Result<(), String> {
    let quick = args.flag("--quick");
    let out = args
        .value("--out")?
        .unwrap_or_else(|| "results/megafleet.csv".into());
    let counts: Vec<u32> = match args.value("--counts")? {
        Some(list) => {
            let parsed: Result<Vec<u32>, _> = list.split(',').map(|s| s.trim().parse()).collect();
            let parsed = parsed.map_err(|_| format!("bad --counts list: {list}"))?;
            if parsed.is_empty() || parsed.contains(&0) {
                return Err(format!("bad --counts list: {list}"));
            }
            parsed
        }
        None if quick => MEGAFLEET_QUICK_COUNTS.to_vec(),
        None => MEGAFLEET_COUNTS.to_vec(),
    };
    let jobs = args.jobs()?;
    args.finish()?;
    println!(
        "megafleet sweep: {{{}}} flyweights + 4 faithful through a two-tier fabric",
        counts
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let sweep = megafleet_sweep(
        &counts,
        &[ServerKind::Filer, ServerKind::Knfsd],
        quick,
        jobs,
    );
    println!("{}", sweep.render());
    sweep
        .write_csv(std::path::Path::new(&out))
        .map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_qos(mut args: Args) -> Result<(), String> {
    let quick = args.flag("--quick");
    let out = args
        .value("--out")?
        .unwrap_or_else(|| "results/qos.csv".into());
    let jobs = args.jobs()?;
    args.finish()?;
    let scheds = [
        SchedPolicy::Fifo,
        SchedPolicy::drr(),
        SchedPolicy::classed_drr(),
    ];
    let (servers, victims, bytes): (&[ServerKind], usize, u64) = if quick {
        (&[ServerKind::Filer], 4, 1 << 20)
    } else {
        (&[ServerKind::Filer, ServerKind::Knfsd], 7, 2 << 20)
    };
    println!(
        "qos sweep: 1 hog (gigabit NIC, 64 slots, 32 KB writes, periodic fsync) \
         vs {} victims, {} MB per victim",
        victims,
        bytes >> 20
    );
    let sweep = qos_sweep(servers, &scheds, victims, bytes, jobs);
    println!("{}", sweep.render());
    sweep
        .write_csv(std::path::Path::new(&out))
        .map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_netqos(mut args: Args) -> Result<(), String> {
    let quick = args.flag("--quick");
    let out = args
        .value("--out")?
        .unwrap_or_else(|| "results/netqos.csv".into());
    let port_sched = args.value("--port-sched")?;
    let jobs = args.jobs()?;
    args.finish()?;
    let scheds: Vec<NetSched> = match port_sched.as_deref() {
        None => NetSched::ALL.to_vec(),
        Some(s) => vec![NetSched::parse(s).ok_or_else(|| {
            format!("unknown --port-sched {s} (port-fifo | port-drr | port-wrr)")
        })?],
    };
    let (servers, victims, bytes): (&[ServerKind], usize, u64) = if quick {
        (&[ServerKind::Knfsd], 7, 1 << 20)
    } else {
        (&[ServerKind::Filer, ServerKind::Knfsd], 7, 2 << 20)
    };
    println!(
        "netqos sweep: open-loop {{hog, incast, storm}} aggressors vs {} victims, \
         {} MB per victim",
        victims,
        bytes >> 20
    );
    let sweep = netqos_sweep(servers, &scheds, &TrafficMix::ALL, victims, bytes, jobs);
    println!("{}", sweep.render());
    sweep
        .write_csv(std::path::Path::new(&out))
        .map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_cawl(mut args: Args) -> Result<(), String> {
    let quick = args.flag("--quick");
    let out = args
        .value("--out")?
        .unwrap_or_else(|| "results/cawl.csv".into());
    let jobs = args.jobs()?;
    args.finish()?;
    let (rams, servers): (&[u64], &[ServerKind]) = if quick {
        (&CAWL_QUICK_RAM_SIZES, &CAWL_QUICK_SERVERS)
    } else {
        (&CAWL_RAM_SIZES, &CAWL_SERVERS)
    };
    println!(
        "cawl sweep: RAM {:?} MB x {} server(s) x file {{0.5, 1, 2, 4}}x RAM, cawl tuning",
        rams.iter().map(|r| r >> 20).collect::<Vec<_>>(),
        servers.len()
    );
    let sweep = cawl_sweep(rams, servers, jobs);
    println!("{}", sweep.render());
    sweep
        .write_csv(std::path::Path::new(&out))
        .map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// Runs one sweep's work-list under the profiler and appends its row.
fn bench_sweep<T: Send>(
    report: &mut BenchReport,
    name: &str,
    jobs: usize,
    cells: Vec<nfsperf_sim::Cell<T>>,
) {
    let n = cells.len();
    eprintln!("bench: {name} x{n} cells, {jobs} worker(s) ...");
    let start = std::time::Instant::now();
    let (_, stats) = nfsperf_sim::run_cells_profiled(jobs, cells);
    report.push(SweepStats::from_cells(name, jobs, start.elapsed(), &stats));
}

fn cmd_bench(mut args: Args) -> Result<(), String> {
    let out = args
        .value("--out")?
        .unwrap_or_else(|| "results/bench.json".into());
    let against = args.value("--against")?;
    let tolerance: f64 = args.parsed("--tolerance")?.unwrap_or(0.30);
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("--tolerance {tolerance} not in [0, 1)"));
    }
    let jobs = args.jobs()?;
    args.finish()?;
    let scheds = [
        SchedPolicy::Fifo,
        SchedPolicy::drr(),
        SchedPolicy::classed_drr(),
    ];
    let mut report = BenchReport::new();
    report.host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let mut job_counts = vec![1];
    if jobs > 1 {
        job_counts.push(jobs);
    }
    for &j in &job_counts {
        bench_sweep(
            &mut report,
            "fleet",
            j,
            fleet_cells(
                &[1, 2, 4],
                &[ServerKind::Filer, ServerKind::Knfsd],
                &[Transport::Udp, Transport::Tcp],
                1 << 20,
            ),
        );
        bench_sweep(
            &mut report,
            "qos",
            j,
            qos_run_cells(&[ServerKind::Filer], &scheds, 4, 1 << 20),
        );
        bench_sweep(
            &mut report,
            "netqos",
            j,
            nfsperf_experiments::netqos::netqos_run_cells(
                &[ServerKind::Knfsd],
                &NetSched::ALL,
                &[TrafficMix::Hog],
                2,
                512 << 10,
            ),
        );
        bench_sweep(&mut report, "transport", j, transport_cells(2 << 20, LOSS_RATES));
        bench_sweep(
            &mut report,
            "cawl",
            j,
            cawl_cells(&CAWL_QUICK_RAM_SIZES, &CAWL_QUICK_SERVERS, 1),
        );
        bench_sweep(
            &mut report,
            "megafleet",
            j,
            megafleet_cells(&[1_000, 10_000], &[ServerKind::Filer], true),
        );
    }
    print!("{}", report.render());
    if jobs > 1 {
        for name in ["fleet", "qos", "netqos", "transport", "cawl", "megafleet"] {
            if let Some(s) = report.speedup(name, jobs) {
                println!("{name}: {s:.2}x speedup at --jobs {jobs}");
            }
        }
    }
    let path = std::path::Path::new(&out);
    report
        .write_json(path)
        .map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    if let Some(base_path) = against {
        let text = std::fs::read_to_string(&base_path)
            .map_err(|e| format!("read baseline {base_path}: {e}"))?;
        let baseline =
            BenchReport::parse_json(&text).map_err(|e| format!("baseline {base_path}: {e}"))?;
        let diff = report.compare(&baseline, tolerance);
        print!("{}", diff.render());
        if !diff.passed() {
            return Err(format!(
                "{} regression(s) past {:.0}% tolerance vs {base_path}",
                diff.regressions.len(),
                tolerance * 100.0
            ));
        }
        println!(
            "bench: within {:.0}% of baseline {base_path}",
            tolerance * 100.0
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let cmd = argv.remove(0);
    let args = Args { items: argv };
    let result = match cmd.as_str() {
        "run" => cmd_run(args),
        "figures" => cmd_figures(args),
        "table1" => cmd_table1(args),
        "concurrency" => cmd_concurrency(args),
        "transport" => cmd_transport(args),
        "fleet" => cmd_fleet(args),
        "megafleet" => cmd_megafleet(args),
        "qos" => cmd_qos(args),
        "netqos" => cmd_netqos(args),
        "cawl" => cmd_cawl(args),
        "bench" => cmd_bench(args),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other}\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
