//! `nfsperf` — facade crate for the reproduction of *Linux NFS Client
//! Write Performance* (Lever & Honeyman, 2002).
//!
//! Re-exports every subsystem under one roof:
//!
//! - [`sim`] — the deterministic discrete-event engine,
//! - [`kernel`] — the simulated client machine (CPUs, BKL, memory),
//! - [`xdr`], [`nfs3`], [`sunrpc`] — the wire protocol stack,
//! - [`net`] — NICs, links and fragmentation,
//! - [`server`] — the filer, the Linux knfsd and the slow server,
//! - [`ext2`] — the local-filesystem baseline,
//! - [`client`] — **the paper's subject**: the 2.4.4 NFS client write
//!   path with all three fixes as switches,
//! - [`bonnie`] — the sequential write benchmark,
//! - [`experiments`] — runners for every figure and table.
//!
//! See `README.md` for a tour and `examples/quickstart.rs` for the
//! canonical build-a-world snippet.

pub use nfsperf_bonnie as bonnie;
pub use nfsperf_client as client;
pub use nfsperf_experiments as experiments;
pub use nfsperf_ext2 as ext2;
pub use nfsperf_kernel as kernel;
pub use nfsperf_net as net;
pub use nfsperf_nfs3 as nfs3;
pub use nfsperf_server as server;
pub use nfsperf_sim as sim;
pub use nfsperf_sunrpc as sunrpc;
pub use nfsperf_xdr as xdr;
