//! UDP-vs-TCP transport ablation under packet loss.
//!
//! Runs the same sequential write over three mounts — UDP, UDP with
//! jumbo frames, and TCP — at loss rates from 0 to 5%, and prints the
//! throughput matrix. On a clean link the transports tie; under loss,
//! UDP stalls a whole RPC per dropped datagram (700 ms timer) while TCP
//! recovers per segment.
//!
//! ```sh
//! cargo run --release --example transport_sweep [-- --quick]
//! ```

use nfsperf_experiments as exp;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let size: u64 = if quick { 2 << 20 } else { 8 << 20 };

    println!(
        "== transport x loss sweep ({} MB sequential write, filer server) ==",
        size >> 20
    );
    let sweep = exp::transport_sweep(size, exp::LOSS_RATES, nfsperf_sim::default_jobs());
    println!("{}", sweep.render());

    let udp = sweep.cell("udp", 0.01).unwrap();
    let tcp = sweep.cell("tcp", 0.01).unwrap();
    println!(
        "at 1% loss, flush throughput: tcp {:.1} MB/s vs udp {:.1} MB/s ({:.1}x)",
        tcp.flush_mbps,
        udp.flush_mbps,
        tcp.flush_mbps / udp.flush_mbps.max(0.001)
    );
}
