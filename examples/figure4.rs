//! Figure 4: write() latency with the scalable hash-table request index,
//! 100 MB file — latency stays flat for the whole run.
//!
//! ```sh
//! cargo run --release --example figure4
//! ```

fn main() {
    let trace = nfsperf_experiments::figures::figure4();
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/figure4.csv", trace.to_csv()).expect("write csv");
    println!(
        "Figure 4 - latency with scalable data structures ({})",
        trace.label
    );
    println!("  calls       : {}", trace.latencies.len());
    println!("  mean latency: {} (paper: 136.9 us)", trace.mean);
    println!(
        "  growth last/first decile: x{:.2} (paper: flat)",
        nfsperf_bonnie::trend_ratio(&trace.latencies)
    );
    println!(
        "  write throughput: {:.1} MB/s (paper: ~115)",
        trace.write_mbps
    );
    println!("wrote results/figure4.csv");
}
