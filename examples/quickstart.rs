//! Quickstart: build a client/server world by hand, run a short
//! sequential write, and inspect what happened at every layer.
//!
//! ```sh
//! cargo run --release --example quickstart [-- --transport udp|tcp]
//! ```

use std::rc::Rc;

use nfsperf_client::{ClientTuning, MountConfig, NfsMount};
use nfsperf_kernel::{Kernel, KernelConfig};
use nfsperf_net::{Nic, NicSpec, Path};
use nfsperf_server::{NfsServer, ServerConfig};
use nfsperf_sim::Sim;
use nfsperf_sunrpc::Transport;

fn main() {
    // Mount over UDP (the 2.4 default) unless asked for TCP.
    let mut argv = std::env::args().skip(1);
    let transport = match argv.find(|a| a == "--transport").and_then(|_| argv.next()) {
        Some(v) => Transport::parse(&v).expect("--transport udp|tcp"),
        None => Transport::Udp,
    };

    // One deterministic simulator holds the whole world.
    let sim = Sim::new();

    // The paper's client: dual 933 MHz P3, 256 MB RAM, gigabit NIC.
    let kernel = Kernel::new(&sim, KernelConfig::default());
    let (client_nic, client_rx) = Nic::new(&sim, "client", NicSpec::gigabit());
    let (server_nic, server_rx) = Nic::new(&sim, "server", NicSpec::gigabit());
    let to_server = Path::new(Rc::clone(&client_nic), server_nic, Path::default_latency());

    // A prototype NetApp F85: FILE_SYNC writes into 64 MB of NVRAM.
    let spawn = match transport {
        Transport::Udp => NfsServer::spawn,
        Transport::Tcp => NfsServer::spawn_tcp,
    };
    let server = spawn(
        &sim,
        server_rx,
        to_server.reversed(),
        ServerConfig::netapp_f85(),
    );

    // Mount it with the paper's full patch applied.
    let mount = NfsMount::mount(
        &kernel,
        to_server,
        client_rx,
        MountConfig {
            tuning: ClientTuning::full_patch(),
            transport,
            ..MountConfig::default()
        },
    );

    // Write 4 MB in Bonnie's 8 KB chunks, then flush and close.
    let mount2 = Rc::clone(&mount);
    let sim2 = sim.clone();
    let report = sim.run_until(async move {
        let file = mount2.create("quickstart.dat").await.expect("create");
        nfsperf_bonnie::run(&sim2, &file, &nfsperf_bonnie::BonnieConfig::new(4 << 20)).await
    });

    println!("wrote {} bytes in 8 KB chunks", report.file_size);
    println!("  write throughput : {:8.1} MB/s", report.write_mbps());
    println!("  through flush    : {:8.1} MB/s", report.flush_mbps());
    println!("  through close    : {:8.1} MB/s", report.close_mbps());
    println!("  mean write() call: {}", report.mean_latency());

    let xprt = mount.xprt().stats();
    println!(
        "\nRPC transport ({}): {} calls, {} replies, {} retransmits",
        transport.label(),
        xprt.calls,
        xprt.replies,
        xprt.retransmits
    );

    let srv = server.stats();
    println!(
        "server '{}': {} WRITEs ({} bytes), {} COMMITs",
        server.name, srv.writes, srv.write_bytes, srv.commits
    );

    println!("\nclient kernel profile (top 5):");
    for row in kernel.profiler.report().into_iter().take(5) {
        println!(
            "  {:24} {:>12} ({} hits)",
            row.label,
            format!("{}", row.time),
            row.hits
        );
    }

    let lock = kernel.bkl.stats();
    println!(
        "\nglobal kernel lock: {} acquisitions, {} contended, total wait {}",
        lock.acquisitions, lock.contended, lock.total_wait
    );
}
