//! Figure 2: actual write() latency over time, stock client, 40 MB file
//! on the filer — the periodic MAX_REQUEST_SOFT flush spikes.
//!
//! ```sh
//! cargo run --release --example figure2
//! ```

use nfsperf_sim::SimDuration;

fn main() {
    let trace = nfsperf_experiments::figures::figure2();
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/figure2.csv", trace.to_csv()).expect("write csv");
    let ms1 = SimDuration::from_millis(1);
    println!("Figure 2 - write() latency over time ({})", trace.label);
    println!("  calls            : {}", trace.latencies.len());
    println!("  spikes >1ms      : {}", trace.spikes);
    let periods = trace.spike_periods(ms1);
    if !periods.is_empty() {
        println!(
            "  mean spike period: {:.0} calls (paper: every 80-90)",
            periods.iter().sum::<usize>() as f64 / periods.len() as f64
        );
    }
    println!("  mean latency     : {}", trace.mean);
    println!("  mean excl spikes : {}", trace.mean_excluding_spikes);
    println!("  write throughput : {:.1} MB/s", trace.write_mbps);
    println!("wrote results/figure2.csv (call,latency_us)");
}
