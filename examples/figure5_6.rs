//! Figures 5 and 6: write() latency histograms against both servers,
//! with the kernel lock held across sock_sendmsg (Fig 5) and released
//! (Fig 6). 30 MB file, 60 us bins.
//!
//! ```sh
//! cargo run --release --example figure5_6
//! ```

fn main() {
    std::fs::create_dir_all("results").expect("mkdir results");
    for (name, pair) in [
        ("figure5", nfsperf_experiments::figures::figure5()),
        ("figure6", nfsperf_experiments::figures::figure6()),
    ] {
        std::fs::write(format!("results/{name}.csv"), pair.to_csv()).expect("write csv");
        println!("{name}: {}", pair.label);
        println!("  filer  mean {} max {}", pair.filer_mean, pair.filer_max);
        println!("  linux  mean {} max {}", pair.knfsd_mean, pair.knfsd_max);
        println!("  filer histogram:\n{}", pair.filer);
        println!("  linux histogram:\n{}", pair.knfsd);
    }
    println!("wrote results/figure5.csv and results/figure6.csv");
}
