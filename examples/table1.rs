//! Table 1: client memory write throughput before and after the kernel
//! lock modification (5 MB file).
//!
//! ```sh
//! cargo run --release --example table1
//! ```

use nfsperf_experiments::{ascii_table, figures, write_rows_csv};

fn main() {
    let t = figures::table1();
    let rows = vec![
        vec![
            "NetApp filer".to_string(),
            format!("{:.0}", t.filer_normal),
            format!("{:.0}", t.filer_no_lock),
            "115".into(),
            "140".into(),
        ],
        vec![
            "Linux NFS server".to_string(),
            format!("{:.0}", t.linux_normal),
            format!("{:.0}", t.linux_no_lock),
            "138".into(),
            "147".into(),
        ],
    ];
    println!("Table 1 - memory write throughput (MB/s), 5 MB file");
    println!(
        "{}",
        ascii_table(
            &[
                "server",
                "Normal",
                "No lock",
                "paper Normal",
                "paper No lock"
            ],
            &rows
        )
    );
    write_rows_csv(
        std::path::Path::new("results/table1.csv"),
        &[
            "server",
            "normal_mbps",
            "no_lock_mbps",
            "paper_normal",
            "paper_no_lock",
        ],
        &rows,
    )
    .expect("write csv");
    println!("wrote results/table1.csv");
}
