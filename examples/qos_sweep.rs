//! Unfair-workload QoS sweep: one hog vs N−1 victims, across servers and
//! scheduling policies. Writes `results/qos.csv` and prints the table.
//!
//! Run with `cargo run --release --example qos_sweep [-- --quick]`.
//!
//! Cells fan out over `NFSPERF_JOBS` worker threads (default: the
//! machine's parallelism); the CSV is bit-identical at any value.

use nfsperf_experiments::{qos_sweep, ServerKind};
use nfsperf_server::SchedPolicy;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scheds = [
        SchedPolicy::Fifo,
        SchedPolicy::drr(),
        SchedPolicy::classed_drr(),
    ];
    let (servers, victims, bytes): (&[ServerKind], usize, u64) = if quick {
        (&[ServerKind::Filer], 4, 1 << 20)
    } else {
        (&[ServerKind::Filer, ServerKind::Knfsd], 7, 2 << 20)
    };
    let sweep = qos_sweep(servers, &scheds, victims, bytes, nfsperf_sim::default_jobs());
    print!("{}", sweep.render());
    let path = std::path::Path::new("results/qos.csv");
    sweep.write_csv(path).expect("write results/qos.csv");
    println!("wrote {}", path.display());
}
