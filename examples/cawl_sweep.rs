//! CAWL regime sweep: client RAM × server speed × file size, under the
//! cache-aware client tuning (full patch + foreground throttling).
//! Writes `results/cawl.csv` and prints the table with regime markers.
//!
//! Run with `cargo run --release --example cawl_sweep [-- --quick]`.
//!
//! Cells fan out over `NFSPERF_JOBS` worker threads (default: the
//! machine's parallelism); the CSV is bit-identical at any value.

use nfsperf_experiments::{
    cawl_sweep, ServerKind, CAWL_QUICK_RAM_SIZES, CAWL_QUICK_SERVERS, CAWL_RAM_SIZES, CAWL_SERVERS,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (rams, servers): (&[u64], &[ServerKind]) = if quick {
        (&CAWL_QUICK_RAM_SIZES, &CAWL_QUICK_SERVERS)
    } else {
        (&CAWL_RAM_SIZES, &CAWL_SERVERS)
    };
    let sweep = cawl_sweep(rams, servers, nfsperf_sim::default_jobs());
    print!("{}", sweep.render());
    let path = std::path::Path::new("results/cawl.csv");
    sweep.write_csv(path).expect("write results/cawl.csv");
    println!("wrote {}", path.display());
}
