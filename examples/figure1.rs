//! Figure 1: local vs NFS memory write performance, stock 2.4.4 client.
//!
//! ```sh
//! cargo run --release --example figure1 [--quick]
//! ```
//!
//! Writes `results/figure1.csv` and prints an ASCII rendition.

use nfsperf_experiments::figures;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes = if quick {
        figures::quick_file_sizes()
    } else {
        figures::paper_file_sizes()
    };
    let sweep = figures::figure1(&sizes, nfsperf_sim::default_jobs());
    let path = std::path::Path::new("results/figure1.csv");
    sweep.write_csv(path).expect("write csv");
    println!("Figure 1 - Local v. NFS write throughput (stock 2.4.4 client)");
    println!("{}", sweep.ascii_plot(64, 18));
    println!("wrote {}", path.display());
}
