//! Regenerates every table and figure, writing CSVs under `results/`.
//!
//! ```sh
//! cargo run --release --example run_all [--quick]
//! ```

use nfsperf_experiments::figures;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes = if quick {
        figures::quick_file_sizes()
    } else {
        figures::paper_file_sizes()
    };
    std::fs::create_dir_all("results").expect("mkdir results");

    eprintln!("figure 1 ...");
    figures::figure1(&sizes)
        .write_csv(std::path::Path::new("results/figure1.csv"))
        .unwrap();
    eprintln!("figure 2 ...");
    std::fs::write("results/figure2.csv", figures::figure2().to_csv()).unwrap();
    eprintln!("figure 3 ...");
    std::fs::write("results/figure3.csv", figures::figure3().to_csv()).unwrap();
    eprintln!("figure 4 ...");
    std::fs::write("results/figure4.csv", figures::figure4().to_csv()).unwrap();
    eprintln!("figures 5/6 ...");
    std::fs::write("results/figure5.csv", figures::figure5().to_csv()).unwrap();
    std::fs::write("results/figure6.csv", figures::figure6().to_csv()).unwrap();
    eprintln!("table 1 ...");
    let t = figures::table1();
    std::fs::write(
        "results/table1.csv",
        format!(
            "server,normal_mbps,no_lock_mbps\nnetapp-filer,{:.1},{:.1}\nlinux-nfs-server,{:.1},{:.1}\n",
            t.filer_normal, t.filer_no_lock, t.linux_normal, t.linux_no_lock
        ),
    )
    .unwrap();
    eprintln!("figure 7 ...");
    figures::figure7(&sizes)
        .write_csv(std::path::Path::new("results/figure7.csv"))
        .unwrap();
    eprintln!("slow-server comparison ...");
    let cmp = figures::slow_server_comparison();
    std::fs::write(
        "results/slow_server.csv",
        format!(
            "server,write_mbps\nnetapp-filer,{:.1}\nlinux-nfs-server,{:.1}\nslow-100bt,{:.1}\n",
            cmp.filer_mbps, cmp.knfsd_mbps, cmp.slow_mbps
        ),
    )
    .unwrap();
    println!("all results written under results/");
}
