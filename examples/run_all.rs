//! Regenerates every table and figure, writing CSVs under `results/`.
//!
//! ```sh
//! cargo run --release --example run_all [--quick] [--jobs N]
//! ```
//!
//! The exhibits are mutually independent simulated worlds, so they fan
//! out across `--jobs` worker threads (default: `NFSPERF_JOBS`, else the
//! machine's parallelism) through [`nfsperf_sim::runner`]; each exhibit
//! runs its inner sweep serially so the pool never nests. Every CSV is
//! bit-identical at any jobs count. Total wall-clock is appended to
//! `results/run_all.log`.

use nfsperf_experiments::figures;
use nfsperf_sim::runner;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(runner::default_jobs);
    let sizes = if quick {
        figures::quick_file_sizes()
    } else {
        figures::paper_file_sizes()
    };
    std::fs::create_dir_all("results").expect("mkdir results");

    let s1 = sizes.clone();
    let s7 = sizes.clone();
    let cells: Vec<runner::Cell<(&'static str, String)>> = vec![
        runner::Cell::new("run_all/figure1", move || {
            ("figure1.csv", figures::figure1(&s1, 1).to_csv())
        }),
        runner::Cell::new("run_all/figure2", || {
            ("figure2.csv", figures::figure2().to_csv())
        }),
        runner::Cell::new("run_all/figure3", || {
            ("figure3.csv", figures::figure3().to_csv())
        }),
        runner::Cell::new("run_all/figure4", || {
            ("figure4.csv", figures::figure4().to_csv())
        }),
        runner::Cell::new("run_all/figure5", || {
            ("figure5.csv", figures::figure5().to_csv())
        }),
        runner::Cell::new("run_all/figure6", || {
            ("figure6.csv", figures::figure6().to_csv())
        }),
        runner::Cell::new("run_all/table1", || {
            let t = figures::table1();
            (
                "table1.csv",
                format!(
                    "server,normal_mbps,no_lock_mbps\nnetapp-filer,{:.1},{:.1}\nlinux-nfs-server,{:.1},{:.1}\n",
                    t.filer_normal, t.filer_no_lock, t.linux_normal, t.linux_no_lock
                ),
            )
        }),
        runner::Cell::new("run_all/figure7", move || {
            ("figure7.csv", figures::figure7(&s7, 1).to_csv())
        }),
        runner::Cell::new("run_all/slow_server", || {
            let cmp = figures::slow_server_comparison();
            (
                "slow_server.csv",
                format!(
                    "server,write_mbps\nnetapp-filer,{:.1}\nlinux-nfs-server,{:.1}\nslow-100bt,{:.1}\n",
                    cmp.filer_mbps, cmp.knfsd_mbps, cmp.slow_mbps
                ),
            )
        }),
    ];

    eprintln!("{} exhibits on {} worker(s) ...", cells.len(), jobs);
    let start = std::time::Instant::now();
    let outputs = runner::run_cells(jobs, cells);
    let wall = start.elapsed();
    for (name, body) in outputs {
        std::fs::write(format!("results/{name}"), body).unwrap();
    }
    let log = format!(
        "run_all: {} exhibits, jobs={}, wall={:.3}s, quick={}\n",
        9,
        jobs,
        wall.as_secs_f64(),
        quick
    );
    std::fs::write("results/run_all.log", &log).expect("write results/run_all.log");
    print!("{log}");
    println!("all results written under results/");
}
