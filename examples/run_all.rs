//! Regenerates every table and figure, writing CSVs under `results/`.
//!
//! ```sh
//! cargo run --release --example run_all [--quick] [--jobs N]
//! ```
//!
//! The exhibits split into mutually independent simulated worlds — one
//! cell per figure-1/7 throughput point, per figure-5/6 histogram half,
//! per Table 1 entry, per slow-server run — fanned across `--jobs`
//! worker threads (default: `NFSPERF_JOBS`, else the machine's
//! parallelism) through [`nfsperf_sim::runner`]. The parts are
//! reassembled in work-list order, so every CSV is bit-identical at any
//! jobs count. Total wall-clock is appended to `results/run_all.log`.

use nfsperf_experiments::figures;
use nfsperf_sim::runner;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(runner::default_jobs);
    let sizes = if quick {
        figures::quick_file_sizes()
    } else {
        figures::paper_file_sizes()
    };
    std::fs::create_dir_all("results").expect("mkdir results");

    let cells = figures::exhibit_cells(&sizes);
    eprintln!("{} exhibit cells on {} worker(s) ...", cells.len(), jobs);
    let start = std::time::Instant::now();
    let parts = runner::run_cells(jobs, cells);
    let wall = start.elapsed();
    let outputs = figures::assemble_exhibits(&sizes, parts);
    let exhibits = outputs.len();
    for (name, body) in outputs {
        std::fs::write(format!("results/{name}"), body).unwrap();
    }
    let log = format!(
        "run_all: {} exhibits, jobs={}, wall={:.3}s, quick={}\n",
        exhibits,
        jobs,
        wall.as_secs_f64(),
        quick
    );
    std::fs::write("results/run_all.log", &log).expect("write results/run_all.log");
    print!("{log}");
    println!("all results written under results/");
}
