//! The paper's future-work experiment: concurrent writers on separate
//! CPUs, to one server and to two, with and without the kernel lock
//! around sock_sendmsg.
//!
//! ```sh
//! cargo run --release --example concurrent_writers
//! ```

fn main() {
    println!("two concurrent writers, 8 MB each (aggregate memory write MB/s):\n");
    for (label, r) in nfsperf_experiments::future_work_comparison(8 << 20) {
        println!(
            "  {label:28} 1 writer {:>6.1}  2 writers {:>6.1}  scaling x{:.2}",
            r.one_writer_mbps,
            r.two_writers_mbps,
            r.scaling()
        );
    }
}
