//! Fleet scaling sweep: 1 → 32 clients against one shared server.
//!
//! Every client is a whole simulated machine writing its own file; all
//! of them funnel through one switch uplink running at the server NIC's
//! rate. The sweep reports aggregate and per-client throughput, Jain's
//! fairness index, and the saturation knee for each server × transport
//! curve, and writes `results/fleet.csv`.
//!
//! ```sh
//! cargo run --release --example fleet_sweep [-- --quick]
//! ```
//!
//! Cells fan out over `NFSPERF_JOBS` worker threads (default: the
//! machine's parallelism); the CSV is bit-identical at any value.

use nfsperf_experiments as exp;
use nfsperf_sunrpc::Transport;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let counts: &[usize] = if quick { &[1, 2, 4] } else { exp::FLEET_CLIENT_COUNTS };
    let bytes_per_client: u64 = if quick { 1 << 20 } else { 4 << 20 };

    println!(
        "== fleet scaling sweep ({} MB per client, shared uplink) ==",
        bytes_per_client >> 20
    );
    let sweep = exp::fleet_sweep(
        counts,
        &[exp::ServerKind::Filer, exp::ServerKind::Knfsd],
        &[Transport::Udp, Transport::Tcp],
        bytes_per_client,
        nfsperf_sim::default_jobs(),
    );
    println!("{}", sweep.render());

    let out = std::path::Path::new("results/fleet.csv");
    sweep.write_csv(out).expect("write results/fleet.csv");
    println!("wrote {}", out.display());
}
