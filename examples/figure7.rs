//! Figure 7: local vs NFS write throughput with the fully patched client.
//!
//! ```sh
//! cargo run --release --example figure7 [--quick]
//! ```
//!
//! Writes `results/figure7.csv` and prints an ASCII rendition.

use nfsperf_experiments::figures;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes = if quick {
        figures::quick_file_sizes()
    } else {
        figures::paper_file_sizes()
    };
    let sweep = figures::figure7(&sizes, nfsperf_sim::default_jobs());
    let path = std::path::Path::new("results/figure7.csv");
    sweep.write_csv(path).expect("write csv");
    println!("Figure 7 - Local v. NFS write throughput (enhanced client)");
    println!("{}", sweep.ascii_plot(64, 18));
    println!("wrote {}", path.display());
}
