//! The §3.5 comparison: memory write throughput against servers of
//! decreasing speed with the stock (lock-holding) RPC layer, plus the
//! breakdown of where the writer's lock waits go.
//!
//! ```sh
//! cargo run --release --example slow_server
//! ```

fn main() {
    let cmp = nfsperf_experiments::figures::slow_server_comparison();
    println!("slower servers allow faster client memory writes (BKL held):");
    println!(
        "  vs NetApp filer   : {:>6.1} MB/s (fastest server)",
        cmp.filer_mbps
    );
    println!("  vs Linux server   : {:>6.1} MB/s", cmp.knfsd_mbps);
    println!(
        "  vs 100bT server   : {:>6.1} MB/s (slowest server)",
        cmp.slow_mbps
    );
    println!();
    println!(
        "lock wait blamed on the RPC transmit path (sock_sendmsg): {:.0}% (paper: ~90%)",
        100.0 * cmp.xmit_wait_fraction
    );
    println!(
        "client network throughput during run: filer {:.1} MB/s, linux {:.1} MB/s",
        cmp.filer_net_mbps, cmp.knfsd_net_mbps
    );
}
