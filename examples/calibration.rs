//! Calibration report: runs the paper's key experiments and prints
//! measured-vs-paper anchors side by side.
//!
//! ```sh
//! cargo run --release --example calibration
//! ```

use nfsperf_experiments::{ascii_table, figures};
use nfsperf_sim::SimDuration;

fn main() {
    let ms1 = SimDuration::from_millis(1);

    println!("== Figure 2: stock client, 40 MB vs filer ==");
    let fig2 = figures::figure2();
    let periods = fig2.spike_periods(ms1);
    let mean_period = if periods.is_empty() {
        0.0
    } else {
        periods.iter().sum::<usize>() as f64 / periods.len() as f64
    };
    println!(
        "  spikes: {} of {} calls ({:.2}%)   [paper: 37 of 2560, 1.4%]",
        fig2.spikes,
        fig2.latencies.len(),
        100.0 * fig2.spikes as f64 / fig2.latencies.len() as f64
    );
    println!("  mean spike period: {mean_period:.0} calls   [paper: every ~85]");
    let max = fig2.latencies.iter().max().unwrap();
    let mut spike_sizes: Vec<_> = fig2
        .latencies
        .iter()
        .filter(|l| **l > ms1)
        .copied()
        .collect();
    spike_sizes.sort();
    let median_spike = spike_sizes[spike_sizes.len() / 2];
    println!(
        "  spike magnitude: median {median_spike}, max {max}   [paper: ~19 ms; \
our max includes one filer-checkpoint collision]"
    );
    println!(
        "  mean: {}   mean excl >1ms: {}   [paper: 482.1 us vs 139.6 us]",
        fig2.mean, fig2.mean_excluding_spikes
    );
    println!("  write throughput: {:.1} MB/s", fig2.write_mbps);

    println!("\n== Figure 3: no-flush client, 100 MB vs filer ==");
    let fig3 = figures::figure3();
    let deciles = nfsperf_bonnie::decile_means(&fig3.latencies);
    println!(
        "  spikes >1ms: {}   mean: {}   [paper: no spikes, mean 484.7 us]",
        fig3.spikes, fig3.mean
    );
    println!(
        "  first decile {} -> last decile {}   (growth x{:.1})",
        deciles[0],
        deciles[9],
        nfsperf_bonnie::trend_ratio(&fig3.latencies)
    );

    println!("\n== Figure 4: hash-table client, 100 MB vs filer ==");
    let fig4 = figures::figure4();
    let deciles = nfsperf_bonnie::decile_means(&fig4.latencies);
    println!(
        "  mean: {}   [paper: 136.9 us]   growth x{:.2} [paper: flat]",
        fig4.mean,
        nfsperf_bonnie::trend_ratio(&fig4.latencies)
    );
    println!(
        "  first decile {} -> last decile {}   throughput {:.1} MB/s [paper: ~115]",
        deciles[0], deciles[9], fig4.write_mbps
    );

    println!("\n== Figures 5/6: 30 MB latency histograms ==");
    let fig5 = figures::figure5();
    let fig6 = figures::figure6();
    println!(
        "  BKL held:     filer mean {} max {}   linux mean {} max {}",
        fig5.filer_mean, fig5.filer_max, fig5.knfsd_mean, fig5.knfsd_max
    );
    println!("                [paper: filer 149 us max 381 us, linux 113 us]");
    println!(
        "  lock dropped: filer mean {} max {}   linux mean {} max {}",
        fig6.filer_mean, fig6.filer_max, fig6.knfsd_mean, fig6.knfsd_max
    );
    println!("                [paper: filer 127 us max 292 us, linux 105 us]");

    println!("\n== Table 1: 5 MB memory write throughput ==");
    let t1 = figures::table1();
    println!(
        "{}",
        ascii_table(
            &["", "Normal", "No lock", "paper Normal", "paper No lock"],
            &[
                vec![
                    "NetApp filer".into(),
                    format!("{:.0} MB/s", t1.filer_normal),
                    format!("{:.0} MB/s", t1.filer_no_lock),
                    "115 MB/s".into(),
                    "140 MB/s".into(),
                ],
                vec![
                    "Linux NFS server".into(),
                    format!("{:.0} MB/s", t1.linux_normal),
                    format!("{:.0} MB/s", t1.linux_no_lock),
                    "138 MB/s".into(),
                    "147 MB/s".into(),
                ],
            ],
        )
    );

    println!("== §3.5: slower servers allow faster memory writes ==");
    let cmp = figures::slow_server_comparison();
    println!(
        "  filer {:.0} MB/s < linux {:.0} MB/s < slow-100bt {:.0} MB/s  [paper ordering]",
        cmp.filer_mbps, cmp.knfsd_mbps, cmp.slow_mbps
    );
    println!(
        "  lock waits blamed on rpc_xmit/sock_sendmsg: {:.0}%  [paper: ~90%]",
        100.0 * cmp.xmit_wait_fraction
    );
    println!(
        "  network during run: filer {:.1} MB/s, linux {:.1} MB/s  [paper: 38 vs 26]",
        cmp.filer_net_mbps, cmp.knfsd_net_mbps
    );
}
