//! Ablation sweeps beyond the paper: soft-limit, RPC slots, NVRAM size,
//! jumbo frames, CPU count, COMMIT threshold.
//!
//! ```sh
//! cargo run --release --example ablations
//! ```

use nfsperf_experiments as exp;

fn main() {
    println!("== MAX_REQUEST_SOFT sweep (stock client, 10 MB vs filer) ==");
    for (limit, mbps, spikes) in exp::soft_limit_sweep(&[64, 128, 192, 256, 384]) {
        println!("  soft={limit:>4}  write {mbps:>6.1} MB/s  spikes {spikes}");
    }

    println!("\n== RPC slot-table sweep (patched client, 10 MB vs filer) ==");
    let sweep = exp::slot_table_sweep(&[2, 4, 8, 16, 32, 64]);
    for s in &sweep.series {
        print!("  {:18}", s.name);
        for (x, y) in &s.points {
            print!("  {x:.0}:{y:.1}");
        }
        println!();
    }

    println!("\n== jumbo frames (MTU 9000) ==");
    let mtu = exp::mtu_ablation();
    println!(
        "  standard: {:>6.1} MB/s at {:.1} fragments/RPC",
        mtu.standard_mbps, mtu.standard_frags_per_rpc
    );
    println!(
        "  jumbo   : {:>6.1} MB/s at {:.1} fragments/RPC",
        mtu.jumbo_mbps, mtu.jumbo_frags_per_rpc
    );

    println!("\n== filer NVRAM sweep (300 MB file, patched client) ==");
    for (cap, mbps) in exp::nvram_sweep(&[16 << 20, 64 << 20, 256 << 20]) {
        println!("  nvram {:>4} MB -> {mbps:>6.1} MB/s", cap >> 20);
    }

    println!("\n== CPU count (5 MB vs filer, BKL held) ==");
    let cpu = exp::cpu_ablation();
    println!(
        "  1 CPU : {:>6.1} MB/s, lock wait {} ns/call",
        cpu.one_cpu_mbps, cpu.one_cpu_wait_ns
    );
    println!(
        "  2 CPUs: {:>6.1} MB/s, lock wait {} ns/call",
        cpu.two_cpu_mbps, cpu.two_cpu_wait_ns
    );

    println!("\n== COMMIT threshold sweep (20 MB vs Linux server) ==");
    for (t, mbps) in exp::commit_threshold_sweep(&[64 << 10, 1 << 20, 8 << 20]) {
        println!(
            "  threshold {:>5} KB -> flush-inclusive {mbps:>6.1} MB/s",
            t >> 10
        );
    }

    println!("\n== wsize sweep (20 MB vs filer, patched client) ==");
    for (w, write, flush) in exp::wsize_sweep(&[4096, 8192, 16384, 32768]) {
        println!("  wsize {w:>5} -> write {write:>6.1} MB/s, flush {flush:>6.1} MB/s");
    }

    println!("\n== workload pattern: sequential vs random, list vs hash ==");
    let wc = exp::workload_comparison();
    println!("  sequential: list {:>7.1} us   hash {:>6.1} us", wc.seq_list_us, wc.seq_hash_us);
    println!("  random    : list {:>7.1} us   hash {:>6.1} us", wc.rand_list_us, wc.rand_hash_us);
}
