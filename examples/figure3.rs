//! Figure 3: write() latency with the periodic flushes removed, 100 MB
//! file — no spikes, but latency grows with the request list.
//!
//! ```sh
//! cargo run --release --example figure3
//! ```

fn main() {
    let trace = nfsperf_experiments::figures::figure3();
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/figure3.csv", trace.to_csv()).expect("write csv");
    let deciles = nfsperf_bonnie::decile_means(&trace.latencies);
    println!(
        "Figure 3 - latency without periodic flushes ({})",
        trace.label
    );
    println!("  calls       : {}", trace.latencies.len());
    println!("  spikes >1ms : {} (paper: none)", trace.spikes);
    println!("  mean latency: {} (paper: 484.7 us)", trace.mean);
    println!("  decile means:");
    for (i, d) in deciles.iter().enumerate() {
        println!("    {:>3}% {:>12}", (i + 1) * 10, format!("{d}"));
    }
    println!(
        "  growth last/first decile: x{:.2}",
        nfsperf_bonnie::trend_ratio(&trace.latencies)
    );
    println!("wrote results/figure3.csv");
}
