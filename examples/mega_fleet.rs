//! Megafleet sweep: 1k → 1M flyweight clients against one server.
//!
//! Each cell calibrates a behavioral client model from one faithful
//! probe against the target server, then drives that many flyweights —
//! plus four embedded full-fidelity clients — through a two-tier switch
//! fabric into the server. Reports aggregate MB/s, per-tier fairness,
//! flyweight RPC p99, and resident bytes per flyweight, and writes
//! `results/megafleet.csv`.
//!
//! ```sh
//! cargo run --release --example mega_fleet [-- --quick]
//! ```
//!
//! Cells fan out over `NFSPERF_JOBS` worker threads (default: the
//! machine's parallelism); the CSV is bit-identical at any value.

use nfsperf_experiments as exp;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let counts: &[u32] = if quick {
        exp::MEGAFLEET_QUICK_COUNTS
    } else {
        exp::MEGAFLEET_COUNTS
    };

    println!(
        "== megafleet sweep ({} flyweights max, {} faithful embedded) ==",
        counts.last().unwrap(),
        exp::MEGAFLEET_FAITHFUL
    );
    let sweep = exp::megafleet_sweep(
        counts,
        &[exp::ServerKind::Filer, exp::ServerKind::Knfsd],
        quick,
        nfsperf_sim::default_jobs(),
    );
    println!("{}", sweep.render());

    let out = std::path::Path::new("results/megafleet.csv");
    sweep.write_csv(out).expect("write results/megafleet.csv");
    println!("wrote {}", out.display());
}
